module Arch = Capri_arch
module Stat = Capri_util.Stat

module Model = struct
  type t = { values : int array }  (* index by key; -1 = absent *)

  let create ~key_space = { values = Array.make (key_space + 1) (-1) }
  let copy t = { values = Array.copy t.values }
  let get t key = if t.values.(key) = -1 then None else Some t.values.(key)

  let apply t (r : Wire.request) =
    let v = t.values.(r.key) in
    match r.op with
    | Wire.Get ->
      if v = -1 then Wire.response_miss
      else Wire.response ~status:Wire.Ok ~payload:v
    | Wire.Put ->
      t.values.(r.key) <- r.value;
      Wire.response ~status:Wire.Ok ~payload:r.value
    | Wire.Delete ->
      if v = -1 then Wire.response_miss
      else begin
        t.values.(r.key) <- -1;
        Wire.response ~status:Wire.Ok ~payload:0
      end
    | Wire.Cas ->
      if v = -1 then Wire.response_miss
      else if v = r.expected then begin
        t.values.(r.key) <- r.value;
        Wire.response ~status:Wire.Ok ~payload:r.value
      end
      else Wire.response ~status:Wire.Cas_fail ~payload:v
end

let expected_responses ~key_space reqs =
  let m = Model.create ~key_space in
  Array.map (fun r -> Model.apply m r) reqs

(* How far the durable table may run ahead of the acked count: a
   request's store can sit in a committed region while its response is
   still staged in the open one (a threshold or fence boundary between
   them), but never by more than the requests bracketing that open
   region. *)
let durable_slack = 2

type violation = { shard : int; crash_index : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "shard %d%s: %s" v.shard
    (if v.crash_index < 0 then " (completion)"
     else Printf.sprintf " (crash %d)" v.crash_index)
    v.detail

let prefix_mismatch expected got =
  (* Returns the first index where [got] stops being a prefix of
     [expected], or None. *)
  let rec go i = function
    | [] -> None
    | g :: rest ->
      if i >= Array.length expected then Some i
      else if expected.(i) <> g then Some i
      else go (i + 1) rest
  in
  go 0 got

let table_matches kv nvm ~shard model =
  let ok = ref true in
  for key = 1 to kv.Kvstore.key_space do
    if !ok && Kvstore.lookup kv nvm ~shard ~key <> Model.get model key then
      ok := false
  done;
  !ok

let check_crash ~kv ~expected ~crash_index (image : Arch.Persist.image) =
  let shards = kv.Kvstore.shards in
  let err shard detail = Error { shard; crash_index; detail } in
  let rec per_shard shard =
    if shard >= shards then Ok ()
    else
      let acked = List.map fst image.Arch.Persist.acked.(shard) in
      let exp : int array = expected.(shard) in
      let n = List.length acked in
      match prefix_mismatch exp acked with
      | Some i when i >= Array.length exp ->
        err shard
          (Printf.sprintf "acked %d responses but only %d requests exist" n
             (Array.length exp))
      | Some i ->
        err shard
          (Printf.sprintf
             "acked response %d is %d but the model answers %d (duplicate, \
              lost or corrupt ack)"
             i (List.nth acked i) exp.(i))
      | None ->
        (* replay the model to the acked count, then scan the slack
           window for a durable match *)
        let m = Model.create ~key_space:kv.Kvstore.key_space in
        let reqs = kv.Kvstore.requests.(shard) in
        for i = 0 to n - 1 do
          ignore (Model.apply m reqs.(i))
        done;
        let hi = min (n + durable_slack) (Array.length reqs) in
        let rec scan k m =
          if table_matches kv image.Arch.Persist.nvm ~shard m then true
          else if k >= hi then false
          else begin
            ignore (Model.apply m reqs.(k));
            scan (k + 1) m
          end
        in
        if scan n m then per_shard (shard + 1)
        else
          err shard
            (Printf.sprintf
               "durable table matches no model state in [%d..%d] — an acked \
                effect is missing or a torn write survived recovery"
               n hi)
  in
  per_shard 0

let check ~kv ~images ~final =
  let expected =
    Array.map
      (expected_responses ~key_space:kv.Kvstore.key_space)
      kv.Kvstore.requests
  in
  let rec crashes i = function
    | [] -> Ok ()
    | image :: rest -> (
      match check_crash ~kv ~expected ~crash_index:i image with
      | Error _ as e -> e
      | Ok () -> crashes (i + 1) rest)
  in
  match crashes 0 images with
  | Error _ as e -> e
  | Ok () ->
    let rec completion shard =
      if shard >= kv.Kvstore.shards then Ok ()
      else
        let exp = expected.(shard) in
        let got = final.(shard) in
        if got <> Array.to_list exp then
          Error
            {
              shard;
              crash_index = -1;
              detail =
                Printf.sprintf
                  "completed run answered %d responses, model answers %d%s"
                  (List.length got) (Array.length exp)
                  (match prefix_mismatch exp got with
                  | Some i when i < Array.length exp ->
                    Printf.sprintf " (first divergence at request %d)" i
                  | _ -> "");
            }
        else completion (shard + 1)
    in
    completion 0

type stats = {
  ops : int;
  rejected : int;
  cycles : int;
  throughput : float;
  p50 : float;
  p99 : float;
  recoveries : int;
  mean_recovery : float;
}

let request_latencies ~loop shard_acks =
  let prev = ref 0 in
  List.mapi
    (fun i (_, cycle) ->
      let l =
        match loop with
        | Client.Closed -> cycle - !prev
        | Client.Open { period } -> cycle - (i * period)
      in
      prev := cycle;
      max 1 l)
    shard_acks

let latencies ~loop acks =
  Array.fold_left
    (fun acc shard_acks ->
      List.rev_append
        (List.rev_map float_of_int (request_latencies ~loop shard_acks))
        acc)
    [] acks

let stats ~loop ~acks ~cycles ~rejected ~recoveries ~recovery_cycles =
  let ops = Array.fold_left (fun a l -> a + List.length l) 0 acks in
  let lat = latencies ~loop acks in
  let pct p = if lat = [] then 0.0 else Stat.percentile p lat in
  {
    ops;
    rejected;
    cycles;
    throughput =
      (if cycles = 0 then 0.0
       else 1000.0 *. float_of_int ops /. float_of_int cycles);
    p50 = pct 50.0;
    p99 = pct 99.0;
    recoveries;
    mean_recovery =
      (if recoveries = 0 then 0.0
       else float_of_int recovery_cycles /. float_of_int recoveries);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d ops (%d rejected) in %d cycles: %.2f ops/kcycle, latency p50 %.0f \
     p99 %.0f, %d recoveries (mean %.0f cycles)"
    s.ops s.rejected s.cycles s.throughput s.p50 s.p99 s.recoveries
    s.mean_recovery
