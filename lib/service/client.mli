(** Deterministic workload generator: YCSB-style mixes over a bounded
    zipfian key popularity ({!Capri_util.Rng.zipf}).

    [Closed] loop means each client issues its next request only after
    the previous acknowledgement — request latency is the inter-ack gap.
    [Open] loop means requests arrive on a fixed period regardless of
    service progress — latency is ack minus arrival and grows without
    bound when the server cannot keep up (which is what admission
    control, {!Server}, is for). *)

type mix = A | B | C
(** A = 50% reads / 50% updates; B = 95/5; C = read-only. *)

val mix_name : mix -> string
val mix_of_string : string -> mix option

type loop = Closed | Open of { period : int (** cycles between arrivals *) }

type cfg = {
  mix : mix;
  key_space : int;
  ops_per_shard : int;
  skew : float;  (** zipfian skew; 0 = uniform, 0.99 = YCSB default *)
  loop : loop;
  seed : int;
}

val default : cfg
(** Mix A, 64 keys, 200 ops/shard, skew 0.99, closed loop, seed 1. *)

val generate : cfg -> shards:int -> Wire.request array array
(** Per-shard request streams; equal [cfg] and [shards] give equal
    streams. *)

val arrival : cfg -> index:int -> int
(** Cycle at which a shard's [index]-th request arrives (0 under a
    closed loop). *)
