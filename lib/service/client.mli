(** Deterministic workload generator: YCSB-style mixes over a bounded
    zipfian key popularity ({!Capri_util.Rng.zipf}), plus optional
    multi-key transactions.

    [Closed] loop means each client issues its next request only after
    the previous acknowledgement — request latency is the inter-ack gap.
    [Open] loop means requests arrive on a fixed period regardless of
    service progress — latency is ack minus arrival and grows without
    bound when the server cannot keep up (which is what admission
    control, {!Server}, is for). *)

type mix = A | B | C
(** A = 50% reads / 50% updates; B = 95/5; C = read-only. *)

val mix_name : mix -> string
val mix_of_string : string -> mix option

type loop = Closed | Open of { period : int (** cycles between arrivals *) }

type cfg = {
  mix : mix;
  key_space : int;
  ops_per_shard : int;
  skew : float;  (** zipfian skew; 0 = uniform, 0.99 = YCSB default *)
  loop : loop;
  seed : int;
  txns : int;  (** multi-key transactions woven into the streams *)
  txn_items : int;  (** max items per participant shard (>= 1) *)
}

val default : cfg
(** Mix A, 64 keys, 200 ops/shard, skew 0.99, closed loop, seed 1, no
    transactions. *)

type workload = { requests : Wire.request array array; txns : Wire.txn array }
(** Per-shard request streams (singles plus, when [txns > 0], one [Txn]
    marker per participant shard woven in at a random point, markers in
    tid order within each stream) and the transactions themselves. *)

val generate : cfg -> shards:int -> workload
(** Equal [cfg] and [shards] give equal workloads; the single-op streams
    with [txns = 0] are byte-identical to the same cfg's streams with
    markers stripped. *)

val arrival : cfg -> index:int -> int
(** Cycle at which a shard's [index]-th request arrives (0 under a
    closed loop). *)
