(** Deterministic workload generator: YCSB-style mixes over a bounded
    zipfian key popularity ({!Capri_util.Rng.zipf}), plus optional
    multi-key transactions.

    [Closed] loop means each client issues its next request only after
    the previous acknowledgement — request latency is the inter-ack gap.
    [Open] loop means requests arrive on a fixed period regardless of
    service progress — latency is ack minus arrival and grows without
    bound when the server cannot keep up (which is what admission
    control, {!Server}, is for). *)

type mix = A | B | C
(** A = 50% reads / 50% updates; B = 95/5; C = read-only. *)

val mix_name : mix -> string
val mix_of_string : string -> mix option

type loop = Closed | Open of { period : int (** cycles between arrivals *) }

type cfg = {
  mix : mix;
  key_space : int;
  ops_per_shard : int;
  skew : float;  (** zipfian skew; 0 = uniform, 0.99 = YCSB default *)
  loop : loop;
  seed : int;
  txns : int;  (** multi-key transactions woven into the streams *)
  txn_items : int;  (** max items per participant shard (>= 1) *)
}

val default : cfg
(** Mix A, 64 keys, 200 ops/shard, skew 0.99, closed loop, seed 1, no
    transactions. *)

type workload = { requests : Wire.request array array; txns : Wire.txn array }
(** Per-shard request streams (singles plus, when [txns > 0], one [Txn]
    marker per participant shard woven in at a random point, markers in
    tid order within each stream) and the transactions themselves. *)

val generate : cfg -> shards:int -> workload
(** Equal [cfg] and [shards] give equal workloads; the single-op streams
    with [txns = 0] are byte-identical to the same cfg's streams with
    markers stripped. *)

val arrival : cfg -> index:int -> int
(** Cycle at which a shard's [index]-th request arrives (0 under a
    closed loop). *)

type tenant = { weight : int; mix : mix; skew : float }
(** One tenant of a shared store: an admission weight (its fair share
    of service), its own op mix and its own key popularity curve over
    a private namespace ({!Wire.tenant_key}). *)

type tenant_workload = {
  base : workload;  (** per-shard streams over global keys *)
  tenants : int;
  space : int;  (** keys per tenant namespace *)
  key_space : int;
      (** global key space to build the store with: [tenants * space],
          plus the shared hot key when the workload carries hot
          transactions *)
  txn_tenant : int array;  (** issuing tenant of tid [i+1], index [i] *)
  weights : int array;  (** admission weights, per tenant *)
}

val generate_tenants :
  ?hot_txns:int -> cfg -> tenants:tenant array -> shards:int -> tenant_workload
(** Multi-tenant workload: tenants interleave into one arrival order by
    smooth weighted round-robin ([cfg.ops_per_shard * shards] ops
    total), each drawing from its own rng, mix and zipfian curve over
    its own [cfg.key_space]-key namespace; requests route to shard
    [key mod shards], so a skew-heavy tenant concentrates load on few
    shards while uniform tenants spread theirs — the imbalance work
    stealing absorbs. [cfg.txns] namespace transactions (2+ keys inside
    the issuer's range) and [hot_txns] hot-key transactions are woven
    in after: the latter all target one shared key outside every
    namespace — tid [cfg.txns + 1] seeds it with an unconditional Put,
    later ones CAS it with the true current value 60% of the time —
    plus a Put in the issuer's own range, so commit/abort contention
    crosses shards. [cfg.mix] and [cfg.skew] are ignored (per-tenant
    instead); equal inputs give equal workloads. *)

val noisy_tenants : tenants:int -> skew:float -> tenant array
(** The noisy-neighbor cast: tenant 0 runs mix A at the given zipfian
    skew, tenants [1..n-1] run mix A uniformly, all equal weight. *)
