(** Request/response encoding between the host-side serving harness and
    the IR shard handlers.

    Requests are staged in per-shard data-segment mailboxes,
    {!words_per_request} words each: [op; key; value; expected]. The
    handler answers every request with exactly one [Out] whose word packs
    a status and a payload as [status * 2^20 + payload]; under journaled
    I/O that output becomes client-visible only when its region commits
    at the back-end proxy — the acknowledgement point.

    Multi-key transactions ride the same mailboxes: a [Txn] {e marker}
    request ([op = Txn; key = tid; value = local item count]) appears in
    every participant shard's stream, in tid order, and the items
    themselves live in a separate per-shard item area laid out by
    {!Kvstore}. A committed marker answers one response per local item;
    an aborted marker answers a single [Aborted] response carrying the
    tid. The 2PC coordinator answers one [Committed]/[Aborted] response
    per transaction, in tid order. *)

type op = Get | Put | Delete | Cas | Txn

type request = { op : op; key : int; value : int; expected : int }
(** [key >= 1] (0 marks an empty table slot); [value]/[expected] in
    [\[0, payload_limit)]. [expected] only matters for [Cas]. For a
    [Txn] marker, [key] is the tid (>= 1), [value] the number of the
    transaction's items local to this shard (>= 1) and [expected] must
    be 0. *)

val op_code : op -> int
val op_name : op -> string

val words_per_request : int

val payload_limit : int
(** Exclusive upper bound on values carried in a response (2^20). *)

val check_request : request -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val encode_request : request -> int array
(** The {!words_per_request} mailbox words. *)

type txn = { tid : int; items : (int * request) array }
(** A multi-key transaction: [(shard, item)] pairs applied in array
    order on commit. Item ops are [Get]/[Put]/[Cas] only; [Cas] items
    are validated at prepare against the pre-transaction state and
    applied unconditionally on commit. *)

val check_txn : shards:int -> txn -> unit
(** Raises [Invalid_argument] on a bad tid, an empty item list, an item
    shard out of range, a [Delete]/[Txn] item, or an out-of-range item
    request. *)

type status = Ok | Miss | Cas_fail | Committed | Aborted

val status_name : status -> string
val response : status:status -> payload:int -> int
val response_miss : int
val decode_response : int -> status * int

(** {2 Scheduler slice headers}

    Under the work-stealing scheduler ({!Sched}), a worker core prefixes
    every slice of shard work it executes with one header word in its
    output stream. Headers occupy a status range disjoint from real
    responses so the host can split a core's interleaved stream back
    into per-shard response streams, ordered by slice sequence number. *)

val slice_status_base : int
(** First status code reserved for slice headers (8). *)

val slice_header : shard:int -> seq:int -> int
(** Header word announcing slice [seq] of [shard]. *)

val is_slice_header : int -> bool

val decode_slice_header : int -> int * int
(** [(shard, seq)]. Raises [Invalid_argument] on a non-header word. *)

(** {2 Tenant key namespaces}

    Tenants share one store but own disjoint key ranges: tenant [t] of
    a store with [space] keys per tenant owns global keys
    [t*space+1 .. (t+1)*space]. *)

val tenant_key : space:int -> tenant:int -> int -> int
(** Global key for a tenant-local key in [1..space]. *)

val tenant_of_key : space:int -> int -> int
(** Owning tenant of a global key. *)

val pp_request : Format.formatter -> request -> unit
val pp_txn : Format.formatter -> txn -> unit
val pp_response : Format.formatter -> int -> unit
