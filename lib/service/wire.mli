(** Request/response encoding between the host-side serving harness and
    the IR shard handlers.

    Requests are staged in per-shard data-segment mailboxes,
    {!words_per_request} words each: [op; key; value; expected]. The
    handler answers every request with exactly one [Out] whose word packs
    a status and a payload as [status * 2^20 + payload]; under journaled
    I/O that output becomes client-visible only when its region commits
    at the back-end proxy — the acknowledgement point.

    Multi-key transactions ride the same mailboxes: a [Txn] {e marker}
    request ([op = Txn; key = tid; value = local item count]) appears in
    every participant shard's stream, in tid order, and the items
    themselves live in a separate per-shard item area laid out by
    {!Kvstore}. A committed marker answers one response per local item;
    an aborted marker answers a single [Aborted] response carrying the
    tid. The 2PC coordinator answers one [Committed]/[Aborted] response
    per transaction, in tid order. *)

type op = Get | Put | Delete | Cas | Txn

type request = { op : op; key : int; value : int; expected : int }
(** [key >= 1] (0 marks an empty table slot); [value]/[expected] in
    [\[0, payload_limit)]. [expected] only matters for [Cas]. For a
    [Txn] marker, [key] is the tid (>= 1), [value] the number of the
    transaction's items local to this shard (>= 1) and [expected] must
    be 0. *)

val op_code : op -> int
val op_name : op -> string

val words_per_request : int

val payload_limit : int
(** Exclusive upper bound on values carried in a response (2^20). *)

val check_request : request -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val encode_request : request -> int array
(** The {!words_per_request} mailbox words. *)

type txn = { tid : int; items : (int * request) array }
(** A multi-key transaction: [(shard, item)] pairs applied in array
    order on commit. Item ops are [Get]/[Put]/[Cas] only; [Cas] items
    are validated at prepare against the pre-transaction state and
    applied unconditionally on commit. *)

val check_txn : shards:int -> txn -> unit
(** Raises [Invalid_argument] on a bad tid, an empty item list, an item
    shard out of range, a [Delete]/[Txn] item, or an out-of-range item
    request. *)

type status = Ok | Miss | Cas_fail | Committed | Aborted

val status_name : status -> string
val response : status:status -> payload:int -> int
val response_miss : int
val decode_response : int -> status * int

val pp_request : Format.formatter -> request -> unit
val pp_txn : Format.formatter -> txn -> unit
val pp_response : Format.formatter -> int -> unit
