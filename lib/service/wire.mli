(** Request/response encoding between the host-side serving harness and
    the IR shard handlers.

    Requests are staged in per-shard data-segment mailboxes,
    {!words_per_request} words each: [op; key; value; expected]. The
    handler answers every request with exactly one [Out] whose word packs
    a status and a payload as [status * 2^20 + payload]; under journaled
    I/O that output becomes client-visible only when its region commits
    at the back-end proxy — the acknowledgement point. *)

type op = Get | Put | Delete | Cas

type request = { op : op; key : int; value : int; expected : int }
(** [key >= 1] (0 marks an empty table slot); [value]/[expected] in
    [\[0, payload_limit)]. [expected] only matters for [Cas]. *)

val op_code : op -> int
val op_name : op -> string

val words_per_request : int

val payload_limit : int
(** Exclusive upper bound on values carried in a response (2^20). *)

val check_request : request -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val encode_request : request -> int array
(** The {!words_per_request} mailbox words. *)

type status = Ok | Miss | Cas_fail

val status_name : status -> string
val response : status:status -> payload:int -> int
val response_miss : int
val decode_response : int -> status * int

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> int -> unit
