type op = Get | Put | Delete | Cas

type request = { op : op; key : int; value : int; expected : int }

let op_code = function Get -> 0 | Put -> 1 | Delete -> 2 | Cas -> 3
let op_name = function Get -> "get" | Put -> "put" | Delete -> "del" | Cas -> "cas"

let words_per_request = 4

let payload_bits = 20
let payload_limit = 1 lsl payload_bits

let check_request r =
  if r.key < 1 then invalid_arg "Wire: keys start at 1 (0 is the empty slot)";
  if r.value < 0 || r.value >= payload_limit then
    invalid_arg "Wire: value outside the payload range";
  if r.expected < 0 || r.expected >= payload_limit then
    invalid_arg "Wire: expected outside the payload range"

let encode_request r =
  check_request r;
  [| op_code r.op; r.key; r.value; r.expected |]

type status = Ok | Miss | Cas_fail

let status_code = function Ok -> 0 | Miss -> 1 | Cas_fail -> 2
let status_name = function Ok -> "ok" | Miss -> "miss" | Cas_fail -> "casfail"

let response ~status ~payload = (status_code status * payload_limit) + payload
let response_miss = response ~status:Miss ~payload:0

let decode_response w =
  let status =
    match w / payload_limit with
    | 0 -> Ok
    | 1 -> Miss
    | 2 -> Cas_fail
    | _ -> invalid_arg (Printf.sprintf "Wire.decode_response: %d" w)
  in
  (status, w mod payload_limit)

let pp_request ppf r =
  match r.op with
  | Get -> Format.fprintf ppf "get k%d" r.key
  | Put -> Format.fprintf ppf "put k%d=%d" r.key r.value
  | Delete -> Format.fprintf ppf "del k%d" r.key
  | Cas -> Format.fprintf ppf "cas k%d %d->%d" r.key r.expected r.value

let pp_response ppf w =
  let status, payload = decode_response w in
  Format.fprintf ppf "%s:%d" (status_name status) payload
