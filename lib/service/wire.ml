type op = Get | Put | Delete | Cas | Txn

type request = { op : op; key : int; value : int; expected : int }

let op_code = function Get -> 0 | Put -> 1 | Delete -> 2 | Cas -> 3 | Txn -> 4

let op_name = function
  | Get -> "get"
  | Put -> "put"
  | Delete -> "del"
  | Cas -> "cas"
  | Txn -> "txn"

let words_per_request = 4

let payload_bits = 20
let payload_limit = 1 lsl payload_bits

let check_request r =
  (match r.op with
  | Txn ->
    if r.key < 1 then invalid_arg "Wire: txn ids start at 1";
    if r.value < 1 then
      invalid_arg "Wire: a txn marker must carry at least one local item";
    if r.expected <> 0 then
      invalid_arg "Wire: a txn marker's expected field must be 0"
  | Get | Put | Delete | Cas ->
    if r.key < 1 then invalid_arg "Wire: keys start at 1 (0 is the empty slot)");
  if r.value < 0 || r.value >= payload_limit then
    invalid_arg "Wire: value outside the payload range";
  if r.expected < 0 || r.expected >= payload_limit then
    invalid_arg "Wire: expected outside the payload range"

let encode_request r =
  check_request r;
  [| op_code r.op; r.key; r.value; r.expected |]

type txn = { tid : int; items : (int * request) array }

let check_txn ~shards t =
  if t.tid < 1 then invalid_arg "Wire: txn ids start at 1";
  if Array.length t.items = 0 then invalid_arg "Wire: empty transaction";
  Array.iter
    (fun (shard, r) ->
      if shard < 0 || shard >= shards then
        invalid_arg "Wire: txn item targets a shard out of range";
      (match r.op with
      | Get | Put | Cas -> ()
      | Delete | Txn ->
        invalid_arg "Wire: txn items are get/put/cas only");
      check_request r)
    t.items

type status = Ok | Miss | Cas_fail | Committed | Aborted

let status_code = function
  | Ok -> 0
  | Miss -> 1
  | Cas_fail -> 2
  | Committed -> 3
  | Aborted -> 4

let status_name = function
  | Ok -> "ok"
  | Miss -> "miss"
  | Cas_fail -> "casfail"
  | Committed -> "committed"
  | Aborted -> "aborted"

let response ~status ~payload = (status_code status * payload_limit) + payload
let response_miss = response ~status:Miss ~payload:0

let decode_response w =
  let status =
    match w / payload_limit with
    | 0 -> Ok
    | 1 -> Miss
    | 2 -> Cas_fail
    | 3 -> Committed
    | 4 -> Aborted
    | _ -> invalid_arg (Printf.sprintf "Wire.decode_response: %d" w)
  in
  (status, w mod payload_limit)

(* ------------------- scheduler slice headers ------------------- *)

(* When the store runs under the work-stealing scheduler, each worker
   core announces every slice it executes with one header word in its
   output stream: the shard the slice belongs to and the shard's slice
   sequence number. Headers live in a status range disjoint from real
   responses (status >= slice_status_base), so the host can demultiplex
   a core's interleaved stream back into per-shard response streams. *)
let slice_status_base = 8

let slice_header ~shard ~seq =
  if shard < 0 then invalid_arg "Wire.slice_header: negative shard";
  if seq < 0 || seq >= payload_limit then
    invalid_arg "Wire.slice_header: seq outside the payload range";
  ((slice_status_base + shard) * payload_limit) + seq

let is_slice_header w = w / payload_limit >= slice_status_base

let decode_slice_header w =
  if not (is_slice_header w) then
    invalid_arg (Printf.sprintf "Wire.decode_slice_header: %d" w);
  ((w / payload_limit) - slice_status_base, w mod payload_limit)

(* ------------------- tenant key namespaces ------------------- *)

(* Tenants share one store but own disjoint key ranges: tenant [t] of a
   store with [space] keys per tenant owns global keys
   [t*space+1 .. (t+1)*space]. Routing and SLA attribution both derive
   from the same arithmetic, so a request can never read or write
   another tenant's namespace. *)
let tenant_key ~space ~tenant key =
  if space < 1 then invalid_arg "Wire.tenant_key: non-positive space";
  if tenant < 0 then invalid_arg "Wire.tenant_key: negative tenant";
  if key < 1 || key > space then
    invalid_arg "Wire.tenant_key: key outside the tenant namespace";
  (tenant * space) + key

let tenant_of_key ~space key =
  if space < 1 then invalid_arg "Wire.tenant_of_key: non-positive space";
  (key - 1) / space

let pp_request ppf r =
  match r.op with
  | Get -> Format.fprintf ppf "get k%d" r.key
  | Put -> Format.fprintf ppf "put k%d=%d" r.key r.value
  | Delete -> Format.fprintf ppf "del k%d" r.key
  | Cas -> Format.fprintf ppf "cas k%d %d->%d" r.key r.expected r.value
  | Txn -> Format.fprintf ppf "txn t%d (%d items)" r.key r.value

let pp_txn ppf t =
  Format.fprintf ppf "t%d:[%s]" t.tid
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun (shard, r) ->
               Format.asprintf "s%d %a" shard
                 (fun ppf r ->
                   match r.op with
                   | Get -> Format.fprintf ppf "get k%d" r.key
                   | Put -> Format.fprintf ppf "put k%d=%d" r.key r.value
                   | Cas ->
                     Format.fprintf ppf "cas k%d %d->%d" r.key r.expected
                       r.value
                   | _ -> Format.fprintf ppf "?")
                 r)
             t.items)))

let pp_response ppf w =
  let status, payload = decode_response w in
  Format.fprintf ppf "%s:%d" (status_name status) payload
