open Capri_ir
module Arch = Capri_arch
module Runtime = Capri_runtime

type t = {
  shards : int;
  cores : int;
  key_space : int;
  capacity : int;
  batch : int;
  requests : Wire.request array array;
  txns : Wire.txn array;
  program : Program.t;
  mailboxes : int array;
  tables : int array;
  items : int array;
  ctrl : int;
  txn_stride : int;
}

(* Oracle-sensitivity knob: when set, the emitted participant path skips
   the spin on the coordinator's decision record and treats its own vote
   as the decision — a shard that voted yes then applies its items even
   when the transaction globally aborts. The fuzz campaign's
   serializability oracle must catch this. *)
let fault_skip_decision = Atomic.make false

let r = Reg.of_int
let rg i = Builder.reg (r i)
let im = Builder.imm

(* Register convention for the [shard] handler (set via thread_spec):
     r0 = mailbox cursor   r1 = remaining requests
     r2 = table base       r3 = capacity
   and, when the store carries transactions:
     r14 = 2PC ctrl base   r15 = 1 + shard (vote-word offset)
     r16 = item-area cursor
   Scratch: r4..r13 (r12 is the batch countdown) plus r17..r23 on the
   transaction path. *)

(* Open-addressing probe; keys are never removed (deletion leaves the
   key with a -1 value sentinel), so with capacity > distinct keys the
   scan always terminates at the key or an empty slot. The caller leaves
   its block open with r8 = key mod capacity; this closes it with a jump
   into the probe loop, which exits with r9 = slot address, r10 = slot
   key at [found] (key present) or [empty] (r10 = 0). *)
let emit_probe f ~prefix ~found ~empty =
  let probe = Builder.block f (prefix ^ "probe") in
  let chk = Builder.block f (prefix ^ "chk") in
  let nxt = Builder.block f (prefix ^ "next") in
  Builder.jump f probe;
  Builder.switch f probe;
  Builder.mul f (r 9) (rg 8) (im 2);
  Builder.add f (r 9) (rg 9) (rg 2);
  Builder.load f (r 10) ~base:(r 9) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 10) (rg 5);
  Builder.branch f (rg 13) found chk;
  Builder.switch f chk;
  Builder.binop f Instr.Eq (r 13) (rg 10) (im 0);
  Builder.branch f (rg 13) empty nxt;
  Builder.switch f nxt;
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.binop f Instr.Rem (r 8) (rg 8) (rg 3);
  Builder.jump f probe

let emit_shard b ~batch ~txn =
  let f = Builder.func b "shard" in
  let reqloop = Builder.block f "reqloop" in
  let probe = Builder.block f "probe" in
  let check_empty = Builder.block f "check_empty" in
  let probe_next = Builder.block f "probe_next" in
  let found = Builder.block f "found" in
  let d_put = Builder.block f "d_put" in
  let d_del = Builder.block f "d_del" in
  let f_get = Builder.block f "f_get" in
  let g_hit = Builder.block f "g_hit" in
  let f_put = Builder.block f "f_put" in
  let f_del = Builder.block f "f_del" in
  let del_do = Builder.block f "del_do" in
  let f_cas = Builder.block f "f_cas" in
  let cas_live = Builder.block f "cas_live" in
  let cas_win = Builder.block f "cas_win" in
  let cas_fail = Builder.block f "cas_fail" in
  let empty = Builder.block f "empty" in
  let e_put = Builder.block f "e_put" in
  let resp_miss = Builder.block f "resp_miss" in
  let next_req = Builder.block f "next_req" in
  let do_fence = Builder.block f "do_fence" in
  let check_done = Builder.block f "check_done" in
  let fin = Builder.block f "done" in
  (* entry *)
  Builder.li f (r 12) 0;
  Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
  Builder.branch f (rg 13) reqloop fin;
  (* fetch the next request from the mailbox *)
  Builder.switch f reqloop;
  Builder.load f (r 4) ~base:(r 0) ~off:0 ();
  Builder.load f (r 5) ~base:(r 0) ~off:1 ();
  Builder.load f (r 6) ~base:(r 0) ~off:2 ();
  Builder.load f (r 7) ~base:(r 0) ~off:3 ();
  (match txn with
  | None ->
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    Builder.jump f probe
  | Some stride ->
    let single = Builder.block f "single" in
    let t_begin = Builder.block f "t_begin" in
    let vloop = Builder.block f "vloop" in
    let vitem = Builder.block f "vitem" in
    let vcas = Builder.block f "vcas" in
    let vfound = Builder.block f "vfound" in
    let vlive = Builder.block f "vlive" in
    let vno = Builder.block f "vno" in
    let vnext = Builder.block f "vnext" in
    let vdone = Builder.block f "vdone" in
    let spin = Builder.block f "spin" in
    let decide = Builder.block f "decide" in
    let t_apply = Builder.block f "t_apply" in
    let aloop = Builder.block f "aloop" in
    let aitem = Builder.block f "aitem" in
    let afound = Builder.block f "afound" in
    let ag = Builder.block f "ag" in
    let ahit = Builder.block f "ahit" in
    let aset = Builder.block f "aset" in
    let aempty = Builder.block f "aempty" in
    let ains = Builder.block f "ains" in
    let amiss = Builder.block f "amiss" in
    let anext = Builder.block f "anext" in
    let t_abort = Builder.block f "t_abort" in
    let t_adv = Builder.block f "t_adv" in
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Txn));
    Builder.branch f (rg 13) t_begin single;
    Builder.switch f single;
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    Builder.jump f probe;
    (* ---- transaction marker: prepare (vote) phase ---- *)
    Builder.switch f t_begin;
    Builder.mv f (r 23) (r 5);  (* tid *)
    Builder.mv f (r 19) (r 6);  (* local item count *)
    Builder.sub f (r 17) (rg 5) (im 1);
    Builder.mul f (r 17) (rg 17) (im stride);
    Builder.add f (r 17) (rg 17) (rg 14);  (* ctrl block of this txn *)
    Builder.li f (r 20) 1;  (* vote yes until a cas item disagrees *)
    Builder.mv f (r 18) (r 16);
    Builder.jump f vloop;
    Builder.switch f vloop;
    Builder.binop f Instr.Eq (r 13) (rg 19) (im 0);
    Builder.branch f (rg 13) vdone vitem;
    Builder.switch f vitem;
    Builder.load f (r 4) ~base:(r 18) ~off:0 ();
    Builder.load f (r 5) ~base:(r 18) ~off:1 ();
    Builder.load f (r 7) ~base:(r 18) ~off:3 ();
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Cas));
    Builder.branch f (rg 13) vcas vnext;
    Builder.switch f vcas;
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    emit_probe f ~prefix:"v" ~found:vfound ~empty:vno;
    Builder.switch f vfound;
    Builder.load f (r 11) ~base:(r 9) ~off:1 ();
    Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
    Builder.branch f (rg 13) vno vlive;
    Builder.switch f vlive;
    Builder.binop f Instr.Eq (r 13) (rg 11) (rg 7);
    Builder.branch f (rg 13) vnext vno;
    Builder.switch f vno;
    Builder.li f (r 20) 2;  (* vote no *)
    Builder.jump f vnext;
    Builder.switch f vnext;
    Builder.add f (r 18) (rg 18) (im 4);
    Builder.sub f (r 19) (rg 19) (im 1);
    Builder.jump f vloop;
    (* vote record: own word of the ctrl block, sealed in its own
       region by the fence before the decision spin *)
    Builder.switch f vdone;
    Builder.add f (r 13) (rg 17) (rg 15);
    Builder.store f ~base:(r 13) ~off:0 (rg 20);
    Builder.fence f;
    if Atomic.get fault_skip_decision then begin
      (* injected bug: take our own vote for the global decision *)
      Builder.mv f (r 22) (r 20);
      Builder.jump f decide
    end
    else Builder.jump f spin;
    Builder.switch f spin;
    Builder.load f (r 22) ~base:(r 17) ~off:0 ();
    Builder.binop f Instr.Eq (r 13) (rg 22) (im 0);
    Builder.branch f (rg 13) spin decide;
    Builder.switch f decide;
    Builder.binop f Instr.Eq (r 13) (rg 22) (im 1);
    Builder.branch f (rg 13) t_apply t_abort;
    (* ---- commit: apply items in order, one response each ---- *)
    Builder.switch f t_apply;
    Builder.load f (r 19) ~base:(r 0) ~off:2 ();  (* reload item count *)
    Builder.mv f (r 18) (r 16);
    Builder.jump f aloop;
    Builder.switch f aloop;
    Builder.binop f Instr.Eq (r 13) (rg 19) (im 0);
    Builder.branch f (rg 13) t_adv aitem;
    Builder.switch f aitem;
    Builder.load f (r 4) ~base:(r 18) ~off:0 ();
    Builder.load f (r 5) ~base:(r 18) ~off:1 ();
    Builder.load f (r 6) ~base:(r 18) ~off:2 ();
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    emit_probe f ~prefix:"a" ~found:afound ~empty:aempty;
    Builder.switch f afound;
    Builder.load f (r 11) ~base:(r 9) ~off:1 ();
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
    Builder.branch f (rg 13) ag aset;
    Builder.switch f ag;
    Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
    Builder.branch f (rg 13) amiss ahit;
    Builder.switch f ahit;
    Builder.out f (rg 11);
    Builder.jump f anext;
    Builder.switch f aset;
    (* put or prepare-validated cas: store unconditionally *)
    Builder.store f ~base:(r 9) ~off:1 (rg 6);
    Builder.out f (rg 6);
    Builder.jump f anext;
    Builder.switch f aempty;
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
    Builder.branch f (rg 13) amiss ains;
    Builder.switch f ains;
    (* value before key, as on the single-op path *)
    Builder.store f ~base:(r 9) ~off:1 (rg 6);
    Builder.store f ~base:(r 9) ~off:0 (rg 5);
    Builder.out f (rg 6);
    Builder.jump f anext;
    Builder.switch f amiss;
    Builder.out f (im Wire.response_miss);
    Builder.jump f anext;
    Builder.switch f anext;
    Builder.add f (r 18) (rg 18) (im 4);
    Builder.sub f (r 19) (rg 19) (im 1);
    Builder.jump f aloop;
    (* ---- abort: one response carrying the tid ---- *)
    Builder.switch f t_abort;
    Builder.add f (r 13) (rg 23)
      (im (Wire.response ~status:Wire.Aborted ~payload:0));
    Builder.out f (rg 13);
    Builder.jump f t_adv;
    (* skip this txn's item area and rejoin the request loop *)
    Builder.switch f t_adv;
    Builder.load f (r 13) ~base:(r 0) ~off:2 ();
    Builder.mul f (r 13) (rg 13) (im Wire.words_per_request);
    Builder.add f (r 16) (rg 16) (rg 13);
    Builder.jump f next_req);
  (* open-addressing probe of the single-op path *)
  Builder.switch f probe;
  Builder.mul f (r 9) (rg 8) (im 2);
  Builder.add f (r 9) (rg 9) (rg 2);
  Builder.load f (r 10) ~base:(r 9) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 10) (rg 5);
  Builder.branch f (rg 13) found check_empty;
  Builder.switch f check_empty;
  Builder.binop f Instr.Eq (r 13) (rg 10) (im 0);
  Builder.branch f (rg 13) empty probe_next;
  Builder.switch f probe_next;
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.binop f Instr.Rem (r 8) (rg 8) (rg 3);
  Builder.jump f probe;
  (* key present: dispatch on op *)
  Builder.switch f found;
  Builder.load f (r 11) ~base:(r 9) ~off:1 ();
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
  Builder.branch f (rg 13) f_get d_put;
  Builder.switch f d_put;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) f_put d_del;
  Builder.switch f d_del;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Delete));
  Builder.branch f (rg 13) f_del f_cas;
  Builder.switch f f_get;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss g_hit;
  Builder.switch f g_hit;
  Builder.out f (rg 11);
  Builder.jump f next_req;
  Builder.switch f f_put;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f f_del;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss del_do;
  Builder.switch f del_do;
  Builder.store f ~base:(r 9) ~off:1 (im (-1));
  Builder.out f (im 0);
  Builder.jump f next_req;
  Builder.switch f f_cas;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss cas_live;
  Builder.switch f cas_live;
  Builder.binop f Instr.Eq (r 13) (rg 11) (rg 7);
  Builder.branch f (rg 13) cas_win cas_fail;
  Builder.switch f cas_win;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f cas_fail;
  Builder.add f (r 13) (rg 11)
    (im (Wire.response ~status:Wire.Cas_fail ~payload:0));
  Builder.out f (rg 13);
  Builder.jump f next_req;
  (* key absent: only Put creates it *)
  Builder.switch f empty;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) e_put resp_miss;
  Builder.switch f e_put;
  (* value before key: regions commit in order, so a crash can never
     leave a key visible with an unwritten value word *)
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.store f ~base:(r 9) ~off:0 (rg 5);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f resp_miss;
  Builder.out f (im Wire.response_miss);
  Builder.jump f next_req;
  (* advance; fence closes the region every [batch] requests *)
  Builder.switch f next_req;
  Builder.add f (r 0) (rg 0) (im Wire.words_per_request);
  Builder.sub f (r 1) (rg 1) (im 1);
  Builder.add f (r 12) (rg 12) (im 1);
  Builder.binop f Instr.Eq (r 13) (rg 12) (im batch);
  Builder.branch f (rg 13) do_fence check_done;
  Builder.switch f do_fence;
  Builder.fence f;
  Builder.li f (r 12) 0;
  Builder.jump f check_done;
  Builder.switch f check_done;
  Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
  Builder.branch f (rg 13) reqloop fin;
  Builder.switch f fin;
  Builder.halt f

(* The 2PC coordinator, one core for the whole store: for each txn in
   tid order, spin until every vote word of its ctrl block is nonzero
   (non-participants are pre-initialized to yes), decide commit iff all
   are yes, store the decision word, ack the outcome, and fence so the
   decision record and its acknowledgement commit atomically. *)
let emit_coord b ~shards ~stride =
  let f = Builder.func b "coord" in
  let cloop = Builder.block f "cloop" in
  let ctxn = Builder.block f "ctxn" in
  let cscan = Builder.block f "cscan" in
  let crd = Builder.block f "crd" in
  let cvote = Builder.block f "cvote" in
  let cdecide = Builder.block f "cdecide" in
  let cfin = Builder.block f "cfin" in
  (* entry: r1 = txn count, r2 = ctrl base; r4 = txn index *)
  Builder.li f (r 4) 0;
  Builder.jump f cloop;
  Builder.switch f cloop;
  Builder.binop f Instr.Lt (r 13) (rg 4) (rg 1);
  Builder.branch f (rg 13) ctxn cfin;
  Builder.switch f ctxn;
  Builder.mul f (r 5) (rg 4) (im stride);
  Builder.add f (r 5) (rg 5) (rg 2);
  Builder.li f (r 6) 1;
  Builder.li f (r 7) 1;
  Builder.jump f cscan;
  Builder.switch f cscan;
  Builder.binop f Instr.Le (r 13) (rg 7) (im shards);
  Builder.branch f (rg 13) crd cdecide;
  Builder.switch f crd;
  Builder.add f (r 8) (rg 5) (rg 7);
  Builder.load f (r 9) ~base:(r 8) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 9) (im 0);
  Builder.branch f (rg 13) crd cvote;
  Builder.switch f cvote;
  Builder.binop f Instr.Ne (r 13) (rg 9) (im 2);
  Builder.binop f Instr.And (r 6) (rg 6) (rg 13);
  Builder.add f (r 7) (rg 7) (im 1);
  Builder.jump f cscan;
  Builder.switch f cdecide;
  Builder.sub f (r 8) (im 2) (rg 6);  (* 1 = commit, 2 = abort *)
  Builder.store f ~base:(r 5) ~off:0 (rg 8);
  Builder.add f (r 9) (rg 8) (im 2);  (* Committed = 3, Aborted = 4 *)
  Builder.mul f (r 9) (rg 9) (im Wire.payload_limit);
  Builder.add f (r 9) (rg 9) (rg 4);
  Builder.add f (r 9) (rg 9) (im 1);
  Builder.out f (rg 9);
  Builder.fence f;
  Builder.add f (r 4) (rg 4) (im 1);
  Builder.jump f cloop;
  Builder.switch f cfin;
  Builder.halt f

let capacity_for key_space = max 8 (2 * key_space)

let round_line n = (n + 7) / 8 * 8
let stride_for ~shards = round_line (1 + shards)

let local_counts ~shards (t : Wire.txn) =
  let local = Array.make shards 0 in
  Array.iter (fun (s, _) -> local.(s) <- local.(s) + 1) t.items;
  local

let check_txns ~shards ~requests ~txns =
  Array.iteri
    (fun i (t : Wire.txn) ->
      if t.tid <> i + 1 then
        invalid_arg "Kvstore: txn ids must be 1..n in array order";
      Wire.check_txn ~shards t)
    txns;
  let expect = Array.map (local_counts ~shards) txns in
  Array.iteri
    (fun s reqs ->
      let last = ref 0 in
      let seen = Array.make (Array.length txns) false in
      Array.iter
        (fun (req : Wire.request) ->
          if req.op = Wire.Txn then begin
            let tid = req.key in
            if tid > Array.length txns then
              invalid_arg "Kvstore: marker for an unknown txn";
            if tid <= !last then
              invalid_arg "Kvstore: txn markers out of tid order";
            if expect.(tid - 1).(s) = 0 then
              invalid_arg "Kvstore: marker on a non-participant shard";
            if req.value <> expect.(tid - 1).(s) then
              invalid_arg "Kvstore: marker item count mismatch";
            seen.(tid - 1) <- true;
            last := tid
          end)
        reqs;
      Array.iteri
        (fun ti local ->
          if local.(s) > 0 && not seen.(ti) then
            invalid_arg "Kvstore: participant shard missing its txn marker")
        expect)
    requests

let build ?(batch = 8) ?(txns = [||]) ~key_space ~requests () =
  let shards = Array.length requests in
  if shards = 0 then invalid_arg "Kvstore.build: no shards";
  if key_space < 1 then invalid_arg "Kvstore.build: key_space must be positive";
  if batch < 1 then invalid_arg "Kvstore.build: batch must be positive";
  let ntxn = Array.length txns in
  let cores = shards + if ntxn > 0 then 1 else 0 in
  Capri_runtime.Layout.check_cores cores;
  Array.iter (fun reqs -> Array.iter Wire.check_request reqs) requests;
  check_txns ~shards ~requests ~txns;
  let capacity = capacity_for key_space in
  let stride = stride_for ~shards in
  let b = Builder.create () in
  emit_shard b ~batch ~txn:(if ntxn = 0 then None else Some stride);
  if ntxn > 0 then emit_coord b ~shards ~stride;
  let mailboxes =
    Array.map
      (fun reqs ->
        let words =
          Array.concat (Array.to_list (Array.map Wire.encode_request reqs))
        in
        (* a shard with no admitted requests still owns a (zeroed) box *)
        let words = if Array.length words = 0 then [| 0 |] else words in
        Builder.alloc_init b words)
      requests
  in
  let tables =
    Array.init shards (fun _ -> Builder.alloc b ~words:(capacity * 2))
  in
  let ctrl =
    if ntxn = 0 then 0
    else begin
      let base = Builder.alloc b ~words:(ntxn * stride) in
      (* non-participant vote words start at yes so the coordinator
         needs no participant mask; decision words start at 0 *)
      Array.iteri
        (fun ti t ->
          let local = local_counts ~shards t in
          Array.iteri
            (fun s c ->
              if c = 0 then
                Builder.init_word b ~addr:(base + (ti * stride) + 1 + s) 1)
            local)
        txns;
      base
    end
  in
  let items =
    if ntxn = 0 then Array.make shards 0
    else
      Array.init shards (fun s ->
          let words =
            Array.concat
              (List.concat_map
                 (fun (t : Wire.txn) ->
                   List.filter_map
                     (fun (shard, item) ->
                       if shard = s then Some (Wire.encode_request item)
                       else None)
                     (Array.to_list t.items))
                 (Array.to_list txns))
          in
          let words = if Array.length words = 0 then [| 0 |] else words in
          Builder.alloc_init b words)
  in
  let program = Builder.finish b ~main:"shard" in
  {
    shards;
    cores;
    key_space;
    capacity;
    batch;
    requests;
    txns;
    program;
    mailboxes;
    tables;
    items;
    ctrl;
    txn_stride = stride;
  }

let thread_specs t =
  let ntxn = Array.length t.txns in
  let shard_threads =
    List.init t.shards (fun s ->
        {
          Runtime.Executor.func = "shard";
          args =
            [
              (r 0, t.mailboxes.(s));
              (r 1, Array.length t.requests.(s));
              (r 2, t.tables.(s));
              (r 3, t.capacity);
            ]
            @ (if ntxn = 0 then []
               else [ (r 14, t.ctrl); (r 15, 1 + s); (r 16, t.items.(s)) ]);
        })
  in
  if ntxn = 0 then shard_threads
  else
    shard_threads
    @ [ { Runtime.Executor.func = "coord"; args = [ (r 1, ntxn); (r 2, t.ctrl) ] } ]

let lookup t mem ~shard ~key =
  let table = t.tables.(shard) in
  let cap = t.capacity in
  let rec go slot steps =
    if steps >= cap then None
    else
      let k = Arch.Memory.read mem (table + (slot * 2)) in
      if k = key then
        let v = Arch.Memory.read mem (table + (slot * 2) + 1) in
        if v = -1 then None else Some v
      else if k = 0 then None
      else go ((slot + 1) mod cap) (steps + 1)
  in
  go (key mod cap) 0

let ctrl_decision t mem ~tid =
  Arch.Memory.read mem (t.ctrl + ((tid - 1) * t.txn_stride))

let ctrl_vote t mem ~tid ~shard =
  Arch.Memory.read mem (t.ctrl + ((tid - 1) * t.txn_stride) + 1 + shard)
