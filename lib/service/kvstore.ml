open Capri_ir
module Arch = Capri_arch
module Runtime = Capri_runtime

type t = {
  shards : int;
  key_space : int;
  capacity : int;
  batch : int;
  requests : Wire.request array array;
  program : Program.t;
  mailboxes : int array;
  tables : int array;
}

let r = Reg.of_int
let rg i = Builder.reg (r i)
let im = Builder.imm

(* Register convention for the [shard] handler (set via thread_spec):
     r0 = mailbox cursor   r1 = remaining requests
     r2 = table base       r3 = capacity
   Scratch: r4..r13; r12 is the batch countdown. *)

let emit_shard b ~batch =
  let f = Builder.func b "shard" in
  let reqloop = Builder.block f "reqloop" in
  let probe = Builder.block f "probe" in
  let check_empty = Builder.block f "check_empty" in
  let probe_next = Builder.block f "probe_next" in
  let found = Builder.block f "found" in
  let d_put = Builder.block f "d_put" in
  let d_del = Builder.block f "d_del" in
  let f_get = Builder.block f "f_get" in
  let g_hit = Builder.block f "g_hit" in
  let f_put = Builder.block f "f_put" in
  let f_del = Builder.block f "f_del" in
  let del_do = Builder.block f "del_do" in
  let f_cas = Builder.block f "f_cas" in
  let cas_live = Builder.block f "cas_live" in
  let cas_win = Builder.block f "cas_win" in
  let cas_fail = Builder.block f "cas_fail" in
  let empty = Builder.block f "empty" in
  let e_put = Builder.block f "e_put" in
  let resp_miss = Builder.block f "resp_miss" in
  let next_req = Builder.block f "next_req" in
  let do_fence = Builder.block f "do_fence" in
  let check_done = Builder.block f "check_done" in
  let fin = Builder.block f "done" in
  (* entry *)
  Builder.li f (r 12) 0;
  Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
  Builder.branch f (rg 13) reqloop fin;
  (* fetch the next request from the mailbox *)
  Builder.switch f reqloop;
  Builder.load f (r 4) ~base:(r 0) ~off:0 ();
  Builder.load f (r 5) ~base:(r 0) ~off:1 ();
  Builder.load f (r 6) ~base:(r 0) ~off:2 ();
  Builder.load f (r 7) ~base:(r 0) ~off:3 ();
  Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
  Builder.jump f probe;
  (* open-addressing probe; keys are never removed (deletion leaves the
     key with a -1 value sentinel), so with capacity > distinct keys the
     scan always terminates at the key or an empty slot *)
  Builder.switch f probe;
  Builder.mul f (r 9) (rg 8) (im 2);
  Builder.add f (r 9) (rg 9) (rg 2);
  Builder.load f (r 10) ~base:(r 9) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 10) (rg 5);
  Builder.branch f (rg 13) found check_empty;
  Builder.switch f check_empty;
  Builder.binop f Instr.Eq (r 13) (rg 10) (im 0);
  Builder.branch f (rg 13) empty probe_next;
  Builder.switch f probe_next;
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.binop f Instr.Rem (r 8) (rg 8) (rg 3);
  Builder.jump f probe;
  (* key present: dispatch on op *)
  Builder.switch f found;
  Builder.load f (r 11) ~base:(r 9) ~off:1 ();
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
  Builder.branch f (rg 13) f_get d_put;
  Builder.switch f d_put;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) f_put d_del;
  Builder.switch f d_del;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Delete));
  Builder.branch f (rg 13) f_del f_cas;
  Builder.switch f f_get;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss g_hit;
  Builder.switch f g_hit;
  Builder.out f (rg 11);
  Builder.jump f next_req;
  Builder.switch f f_put;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f f_del;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss del_do;
  Builder.switch f del_do;
  Builder.store f ~base:(r 9) ~off:1 (im (-1));
  Builder.out f (im 0);
  Builder.jump f next_req;
  Builder.switch f f_cas;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss cas_live;
  Builder.switch f cas_live;
  Builder.binop f Instr.Eq (r 13) (rg 11) (rg 7);
  Builder.branch f (rg 13) cas_win cas_fail;
  Builder.switch f cas_win;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f cas_fail;
  Builder.add f (r 13) (rg 11)
    (im (Wire.response ~status:Wire.Cas_fail ~payload:0));
  Builder.out f (rg 13);
  Builder.jump f next_req;
  (* key absent: only Put creates it *)
  Builder.switch f empty;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) e_put resp_miss;
  Builder.switch f e_put;
  (* value before key: regions commit in order, so a crash can never
     leave a key visible with an unwritten value word *)
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.store f ~base:(r 9) ~off:0 (rg 5);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f resp_miss;
  Builder.out f (im Wire.response_miss);
  Builder.jump f next_req;
  (* advance; fence closes the region every [batch] requests *)
  Builder.switch f next_req;
  Builder.add f (r 0) (rg 0) (im Wire.words_per_request);
  Builder.sub f (r 1) (rg 1) (im 1);
  Builder.add f (r 12) (rg 12) (im 1);
  Builder.binop f Instr.Eq (r 13) (rg 12) (im batch);
  Builder.branch f (rg 13) do_fence check_done;
  Builder.switch f do_fence;
  Builder.fence f;
  Builder.li f (r 12) 0;
  Builder.jump f check_done;
  Builder.switch f check_done;
  Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
  Builder.branch f (rg 13) reqloop fin;
  Builder.switch f fin;
  Builder.halt f

let capacity_for key_space = max 8 (2 * key_space)

let build ?(batch = 8) ~key_space ~requests () =
  let shards = Array.length requests in
  if shards = 0 then invalid_arg "Kvstore.build: no shards";
  if key_space < 1 then invalid_arg "Kvstore.build: key_space must be positive";
  if batch < 1 then invalid_arg "Kvstore.build: batch must be positive";
  Capri_runtime.Layout.check_cores shards;
  Array.iter (fun reqs -> Array.iter Wire.check_request reqs) requests;
  let capacity = capacity_for key_space in
  let b = Builder.create () in
  emit_shard b ~batch;
  let mailboxes =
    Array.map
      (fun reqs ->
        let words =
          Array.concat (Array.to_list (Array.map Wire.encode_request reqs))
        in
        (* a shard with no admitted requests still owns a (zeroed) box *)
        let words = if Array.length words = 0 then [| 0 |] else words in
        Builder.alloc_init b words)
      requests
  in
  let tables =
    Array.init shards (fun _ -> Builder.alloc b ~words:(capacity * 2))
  in
  let program = Builder.finish b ~main:"shard" in
  { shards; key_space; capacity; batch; requests; program; mailboxes; tables }

let thread_specs t =
  List.init t.shards (fun s ->
      {
        Runtime.Executor.func = "shard";
        args =
          [
            (r 0, t.mailboxes.(s));
            (r 1, Array.length t.requests.(s));
            (r 2, t.tables.(s));
            (r 3, t.capacity);
          ];
      })

let lookup t mem ~shard ~key =
  let table = t.tables.(shard) in
  let cap = t.capacity in
  let rec go slot steps =
    if steps >= cap then None
    else
      let k = Arch.Memory.read mem (table + (slot * 2)) in
      if k = key then
        let v = Arch.Memory.read mem (table + (slot * 2) + 1) in
        if v = -1 then None else Some v
      else if k = 0 then None
      else go ((slot + 1) mod cap) (steps + 1)
  in
  go (key mod cap) 0
