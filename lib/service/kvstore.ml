open Capri_ir
module Arch = Capri_arch
module Runtime = Capri_runtime

type t = {
  shards : int;
  cores : int;
  key_space : int;
  capacity : int;
  batch : int;
  requests : Wire.request array array;
  preload : (int * int) array array;
  txns : Wire.txn array;
  program : Program.t;
  mailboxes : int array;
  tables : int array;
  items : int array;
  ctrl : int;
  txn_stride : int;
  sched : Sched.cfg option;
  descs : int;
  deques : int;
  globals : int;
}

(* Oracle-sensitivity knob: when set, the emitted participant path skips
   the spin on the coordinator's decision record and treats its own vote
   as the decision — a shard that voted yes then applies its items even
   when the transaction globally aborts. The fuzz campaign's
   serializability oracle must catch this. *)
let fault_skip_decision = Atomic.make false

let r = Reg.of_int
let rg i = Builder.reg (r i)
let im = Builder.imm

(* Register convention for the request handler (shared between the
   pinned [shard] entry and the scheduled [worker] entry):
     r0 = mailbox cursor   r1 = remaining requests
     r2 = table base       r3 = capacity
   and, when the store carries transactions:
     r14 = 2PC ctrl base   r15 = 1 + shard (vote-word offset)
     r16 = item-area cursor
   Scratch: r4..r13 (r12 is the batch countdown) plus r17..r23 on the
   transaction path. The work-stealing worker additionally owns
     r24 = own deque base  r25 = core id      r26 = victim scan
     r27 = quantum left    r28 = slice seq    r29 = shard id
     r30 = descriptor addr
   none of which the handler body touches. *)

(* Open-addressing probe; keys are never removed (deletion leaves the
   key with a -1 value sentinel), so with capacity > distinct keys the
   scan always terminates at the key or an empty slot. The caller leaves
   its block open with r8 = key mod capacity; this closes it with a jump
   into the probe loop, which exits with r9 = slot address, r10 = slot
   key at [found] (key present) or [empty] (r10 = 0). *)
let emit_probe f ~prefix ~found ~empty =
  let probe = Builder.block f (prefix ^ "probe") in
  let chk = Builder.block f (prefix ^ "chk") in
  let nxt = Builder.block f (prefix ^ "next") in
  Builder.jump f probe;
  Builder.switch f probe;
  Builder.mul f (r 9) (rg 8) (im 2);
  Builder.add f (r 9) (rg 9) (rg 2);
  Builder.load f (r 10) ~base:(r 9) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 10) (rg 5);
  Builder.branch f (rg 13) found chk;
  Builder.switch f chk;
  Builder.binop f Instr.Eq (r 13) (rg 10) (im 0);
  Builder.branch f (rg 13) empty nxt;
  Builder.switch f nxt;
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.binop f Instr.Rem (r 8) (rg 8) (rg 3);
  Builder.jump f probe

(* The request-dispatch body, parameterized over its scheduling skin:
   [entry] runs in the still-open entry block and must terminate it
   (typically into [reqloop]); [wait ~decide] fills the tail of the
   participant's post-vote block — the pinned handler spins on the
   decision word, the scheduled worker checks it once and parks the
   task; [finish ~reqloop] fills the per-request [check_done] block
   (advance emitted, r1 already decremented). Returns the transaction
   path's [decide] block so a scheduled worker can re-enter it when a
   parked participant's decision lands. *)
let emit_handler f ~batch ~txn ~entry ~wait ~finish =
  let decide_out = ref None in
  let reqloop = Builder.block f "reqloop" in
  let probe = Builder.block f "probe" in
  let check_empty = Builder.block f "check_empty" in
  let probe_next = Builder.block f "probe_next" in
  let found = Builder.block f "found" in
  let d_put = Builder.block f "d_put" in
  let d_del = Builder.block f "d_del" in
  let f_get = Builder.block f "f_get" in
  let g_hit = Builder.block f "g_hit" in
  let f_put = Builder.block f "f_put" in
  let f_del = Builder.block f "f_del" in
  let del_do = Builder.block f "del_do" in
  let f_cas = Builder.block f "f_cas" in
  let cas_live = Builder.block f "cas_live" in
  let cas_win = Builder.block f "cas_win" in
  let cas_fail = Builder.block f "cas_fail" in
  let empty = Builder.block f "empty" in
  let e_put = Builder.block f "e_put" in
  let resp_miss = Builder.block f "resp_miss" in
  let next_req = Builder.block f "next_req" in
  let do_fence = Builder.block f "do_fence" in
  let check_done = Builder.block f "check_done" in
  entry ~reqloop;
  (* fetch the next request from the mailbox *)
  Builder.switch f reqloop;
  Builder.load f (r 4) ~base:(r 0) ~off:0 ();
  Builder.load f (r 5) ~base:(r 0) ~off:1 ();
  Builder.load f (r 6) ~base:(r 0) ~off:2 ();
  Builder.load f (r 7) ~base:(r 0) ~off:3 ();
  (match txn with
  | None ->
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    Builder.jump f probe
  | Some stride ->
    let single = Builder.block f "single" in
    let t_begin = Builder.block f "t_begin" in
    let vloop = Builder.block f "vloop" in
    let vitem = Builder.block f "vitem" in
    let vcas = Builder.block f "vcas" in
    let vfound = Builder.block f "vfound" in
    let vlive = Builder.block f "vlive" in
    let vno = Builder.block f "vno" in
    let vnext = Builder.block f "vnext" in
    let vdone = Builder.block f "vdone" in
    let decide = Builder.block f "decide" in
    decide_out := Some decide;
    let t_apply = Builder.block f "t_apply" in
    let aloop = Builder.block f "aloop" in
    let aitem = Builder.block f "aitem" in
    let afound = Builder.block f "afound" in
    let ag = Builder.block f "ag" in
    let ahit = Builder.block f "ahit" in
    let aset = Builder.block f "aset" in
    let aempty = Builder.block f "aempty" in
    let ains = Builder.block f "ains" in
    let amiss = Builder.block f "amiss" in
    let anext = Builder.block f "anext" in
    let t_abort = Builder.block f "t_abort" in
    let t_adv = Builder.block f "t_adv" in
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Txn));
    Builder.branch f (rg 13) t_begin single;
    Builder.switch f single;
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    Builder.jump f probe;
    (* ---- transaction marker: prepare (vote) phase ---- *)
    Builder.switch f t_begin;
    Builder.mv f (r 23) (r 5);  (* tid *)
    Builder.mv f (r 19) (r 6);  (* local item count *)
    Builder.sub f (r 17) (rg 5) (im 1);
    Builder.mul f (r 17) (rg 17) (im stride);
    Builder.add f (r 17) (rg 17) (rg 14);  (* ctrl block of this txn *)
    Builder.li f (r 20) 1;  (* vote yes until a cas item disagrees *)
    Builder.mv f (r 18) (r 16);
    Builder.jump f vloop;
    Builder.switch f vloop;
    Builder.binop f Instr.Eq (r 13) (rg 19) (im 0);
    Builder.branch f (rg 13) vdone vitem;
    Builder.switch f vitem;
    Builder.load f (r 4) ~base:(r 18) ~off:0 ();
    Builder.load f (r 5) ~base:(r 18) ~off:1 ();
    Builder.load f (r 7) ~base:(r 18) ~off:3 ();
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Cas));
    Builder.branch f (rg 13) vcas vnext;
    Builder.switch f vcas;
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    emit_probe f ~prefix:"v" ~found:vfound ~empty:vno;
    Builder.switch f vfound;
    Builder.load f (r 11) ~base:(r 9) ~off:1 ();
    Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
    Builder.branch f (rg 13) vno vlive;
    Builder.switch f vlive;
    Builder.binop f Instr.Eq (r 13) (rg 11) (rg 7);
    Builder.branch f (rg 13) vnext vno;
    Builder.switch f vno;
    Builder.li f (r 20) 2;  (* vote no *)
    Builder.jump f vnext;
    Builder.switch f vnext;
    Builder.add f (r 18) (rg 18) (im 4);
    Builder.sub f (r 19) (rg 19) (im 1);
    Builder.jump f vloop;
    (* vote record: own word of the ctrl block, sealed in its own
       region by the fence before the decision wait *)
    Builder.switch f vdone;
    Builder.add f (r 13) (rg 17) (rg 15);
    Builder.store f ~base:(r 13) ~off:0 (rg 20);
    Builder.fence f;
    if Atomic.get fault_skip_decision then begin
      (* injected bug: take our own vote for the global decision *)
      Builder.mv f (r 22) (r 20);
      Builder.jump f decide
    end
    else wait ~decide;
    Builder.switch f decide;
    Builder.binop f Instr.Eq (r 13) (rg 22) (im 1);
    Builder.branch f (rg 13) t_apply t_abort;
    (* ---- commit: apply items in order, one response each ---- *)
    Builder.switch f t_apply;
    Builder.load f (r 19) ~base:(r 0) ~off:2 ();  (* reload item count *)
    Builder.mv f (r 18) (r 16);
    Builder.jump f aloop;
    Builder.switch f aloop;
    Builder.binop f Instr.Eq (r 13) (rg 19) (im 0);
    Builder.branch f (rg 13) t_adv aitem;
    Builder.switch f aitem;
    Builder.load f (r 4) ~base:(r 18) ~off:0 ();
    Builder.load f (r 5) ~base:(r 18) ~off:1 ();
    Builder.load f (r 6) ~base:(r 18) ~off:2 ();
    Builder.binop f Instr.Rem (r 8) (rg 5) (rg 3);
    emit_probe f ~prefix:"a" ~found:afound ~empty:aempty;
    Builder.switch f afound;
    Builder.load f (r 11) ~base:(r 9) ~off:1 ();
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
    Builder.branch f (rg 13) ag aset;
    Builder.switch f ag;
    Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
    Builder.branch f (rg 13) amiss ahit;
    Builder.switch f ahit;
    Builder.out f (rg 11);
    Builder.jump f anext;
    Builder.switch f aset;
    (* put or prepare-validated cas: store unconditionally *)
    Builder.store f ~base:(r 9) ~off:1 (rg 6);
    Builder.out f (rg 6);
    Builder.jump f anext;
    Builder.switch f aempty;
    Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
    Builder.branch f (rg 13) amiss ains;
    Builder.switch f ains;
    (* value before key, as on the single-op path *)
    Builder.store f ~base:(r 9) ~off:1 (rg 6);
    Builder.store f ~base:(r 9) ~off:0 (rg 5);
    Builder.out f (rg 6);
    Builder.jump f anext;
    Builder.switch f amiss;
    Builder.out f (im Wire.response_miss);
    Builder.jump f anext;
    Builder.switch f anext;
    Builder.add f (r 18) (rg 18) (im 4);
    Builder.sub f (r 19) (rg 19) (im 1);
    Builder.jump f aloop;
    (* ---- abort: one response carrying the tid ---- *)
    Builder.switch f t_abort;
    Builder.add f (r 13) (rg 23)
      (im (Wire.response ~status:Wire.Aborted ~payload:0));
    Builder.out f (rg 13);
    Builder.jump f t_adv;
    (* skip this txn's item area and rejoin the request loop *)
    Builder.switch f t_adv;
    Builder.load f (r 13) ~base:(r 0) ~off:2 ();
    Builder.mul f (r 13) (rg 13) (im Wire.words_per_request);
    Builder.add f (r 16) (rg 16) (rg 13);
    Builder.jump f next_req);
  (* open-addressing probe of the single-op path *)
  Builder.switch f probe;
  Builder.mul f (r 9) (rg 8) (im 2);
  Builder.add f (r 9) (rg 9) (rg 2);
  Builder.load f (r 10) ~base:(r 9) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 10) (rg 5);
  Builder.branch f (rg 13) found check_empty;
  Builder.switch f check_empty;
  Builder.binop f Instr.Eq (r 13) (rg 10) (im 0);
  Builder.branch f (rg 13) empty probe_next;
  Builder.switch f probe_next;
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.binop f Instr.Rem (r 8) (rg 8) (rg 3);
  Builder.jump f probe;
  (* key present: dispatch on op *)
  Builder.switch f found;
  Builder.load f (r 11) ~base:(r 9) ~off:1 ();
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Get));
  Builder.branch f (rg 13) f_get d_put;
  Builder.switch f d_put;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) f_put d_del;
  Builder.switch f d_del;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Delete));
  Builder.branch f (rg 13) f_del f_cas;
  Builder.switch f f_get;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss g_hit;
  Builder.switch f g_hit;
  Builder.out f (rg 11);
  Builder.jump f next_req;
  Builder.switch f f_put;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f f_del;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss del_do;
  Builder.switch f del_do;
  Builder.store f ~base:(r 9) ~off:1 (im (-1));
  Builder.out f (im 0);
  Builder.jump f next_req;
  Builder.switch f f_cas;
  Builder.binop f Instr.Eq (r 13) (rg 11) (im (-1));
  Builder.branch f (rg 13) resp_miss cas_live;
  Builder.switch f cas_live;
  Builder.binop f Instr.Eq (r 13) (rg 11) (rg 7);
  Builder.branch f (rg 13) cas_win cas_fail;
  Builder.switch f cas_win;
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f cas_fail;
  Builder.add f (r 13) (rg 11)
    (im (Wire.response ~status:Wire.Cas_fail ~payload:0));
  Builder.out f (rg 13);
  Builder.jump f next_req;
  (* key absent: only Put creates it *)
  Builder.switch f empty;
  Builder.binop f Instr.Eq (r 13) (rg 4) (im (Wire.op_code Wire.Put));
  Builder.branch f (rg 13) e_put resp_miss;
  Builder.switch f e_put;
  (* value before key: regions commit in order, so a crash can never
     leave a key visible with an unwritten value word *)
  Builder.store f ~base:(r 9) ~off:1 (rg 6);
  Builder.store f ~base:(r 9) ~off:0 (rg 5);
  Builder.out f (rg 6);
  Builder.jump f next_req;
  Builder.switch f resp_miss;
  Builder.out f (im Wire.response_miss);
  Builder.jump f next_req;
  (* advance; fence closes the region every [batch] requests *)
  Builder.switch f next_req;
  Builder.add f (r 0) (rg 0) (im Wire.words_per_request);
  Builder.sub f (r 1) (rg 1) (im 1);
  Builder.add f (r 12) (rg 12) (im 1);
  Builder.binop f Instr.Eq (r 13) (rg 12) (im batch);
  Builder.branch f (rg 13) do_fence check_done;
  Builder.switch f do_fence;
  Builder.fence f;
  Builder.li f (r 12) 0;
  Builder.jump f check_done;
  Builder.switch f check_done;
  finish ~reqloop;
  !decide_out

(* The pinned per-shard entry: one core per shard, requests drained to
   exhaustion, the participant spins on the coordinator's decision. *)
let emit_shard b ~batch ~txn =
  let f = Builder.func b "shard" in
  let fin = ref None in
  ignore @@ emit_handler f ~batch ~txn
    ~entry:(fun ~reqloop ->
      let dn = Builder.block f "done" in
      fin := Some dn;
      Builder.li f (r 12) 0;
      Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
      Builder.branch f (rg 13) reqloop dn)
    ~wait:(fun ~decide ->
      let spin = Builder.block f "spin" in
      Builder.jump f spin;
      Builder.switch f spin;
      Builder.load f (r 22) ~base:(r 17) ~off:0 ();
      Builder.binop f Instr.Eq (r 13) (rg 22) (im 0);
      Builder.branch f (rg 13) spin decide)
    ~finish:(fun ~reqloop ->
      let dn = Option.get !fin in
      Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
      Builder.branch f (rg 13) reqloop dn;
      Builder.switch f dn;
      Builder.halt f)

(* The work-stealing worker: shard descriptors multiplexed over
   [sched.cores] cores via per-core deques (see Sched for the layout
   and the commit-ordering argument). Each deque operation is a short
   lock-word critical section: the lock is taken with an Atomic_rmw
   (which seals the acquirer's region at the instruction) and released
   with a plain store sealed by a fence, so a later acquirer's RMW
   store-conflicts against the previous holder's uncommitted release —
   a successful acquire therefore orders after the commit of the
   holder's whole critical section and, FIFO per core, after
   everything the holder did before it. A stolen task's descriptor
   writeback and slice outputs are thus durable before the thief can
   observe the task, which keeps per-shard ack cycles monotone across
   a migration and 2PC vote records durable before a stolen
   participant's marker can resume. *)
let emit_worker b ~batch ~txn ~sched ~shards ~capacity ~ctrl ~deques ~globals =
  let scfg : Sched.cfg = sched in
  let ncores = scfg.Sched.cores in
  let qcap = max 1 shards in
  let dq_words = Sched.deque_words ~shards in
  let f = Builder.func b "worker" in
  let mainloop = Builder.block f "mainloop" in
  let tryown = Builder.block f "tryown" in
  let own_locked = Builder.block f "own_locked" in
  let own_pop = Builder.block f "own_pop" in
  let own_empty = Builder.block f "own_empty" in
  let do_steal = scfg.Sched.steal && ncores > 1 in
  let stealloop = if do_steal then Some (Builder.block f "stealloop") else None in
  let trysteal = if do_steal then Some (Builder.block f "trysteal") else None in
  let st_retry = if do_steal then Some (Builder.block f "st_retry") else None in
  let st_rmw = if do_steal then Some (Builder.block f "st_rmw") else None in
  let st_locked = if do_steal then Some (Builder.block f "st_locked") else None in
  let st_empty = if do_steal then Some (Builder.block f "st_empty") else None in
  let st_take = if do_steal then Some (Builder.block f "st_take") else None in
  let runtask = Builder.block f "runtask" in
  let slicestart = Builder.block f "slicestart" in
  let qcheck = Builder.block f "qcheck" in
  let slice_end = Builder.block f "slice_end" in
  let writeback = Builder.block f "writeback" in
  let push_enter = Builder.block f "push_enter" in
  let push_locked = Builder.block f "push_locked" in
  let task_done = Builder.block f "task_done" in
  let fin = Builder.block f "fin" in
  let park = if txn <> None then Some (Builder.block f "park") else None in
  let pollwait =
    if txn <> None then Some (Builder.block f "pollwait") else None
  in
  let resume = if txn <> None then Some (Builder.block f "resume") else None in
  let repush_check =
    if txn <> None && do_steal then Some (Builder.block f "repush_check")
    else None
  in
  let repush_enter =
    if txn <> None && do_steal then Some (Builder.block f "repush_enter")
    else None
  in
  let repush_locked =
    if txn <> None && do_steal then Some (Builder.block f "repush_locked")
    else None
  in
  let the = Option.get in
  let reqloop_ref = ref None in
  (* One slice header per slice: announce shard + seq so the host can
     demultiplex this core's interleaved output stream. *)
  let emit_header () =
    Builder.add f (r 4) (rg 29) (im Wire.slice_status_base);
    Builder.mul f (r 4) (rg 4) (im Wire.payload_limit);
    Builder.add f (r 4) (rg 4) (rg 28);
    Builder.out f (rg 4);
    Builder.add f (r 28) (rg 28) (im 1);
    Builder.li f (r 27) scfg.Sched.quantum;
    Builder.li f (r 12) 0
  in
  let decide_opt =
    emit_handler f ~batch ~txn
      ~entry:(fun ~reqloop ->
        reqloop_ref := Some reqloop;
        Builder.li f (r 3) capacity;
        if txn <> None then Builder.li f (r 14) ctrl;
        Builder.jump f mainloop)
      ~wait:(fun ~decide ->
        (* check the decision once; park the task if it is still open
           so this core can serve other shards meanwhile *)
        Builder.load f (r 22) ~base:(r 17) ~off:0 ();
        Builder.binop f Instr.Eq (r 13) (rg 22) (im 0);
        Builder.branch f (rg 13) (the park) decide)
      ~finish:(fun ~reqloop ->
      Builder.binop f Instr.Lt (r 13) (im 0) (rg 1);
      Builder.branch f (rg 13) qcheck task_done;
      Builder.switch f qcheck;
      Builder.sub f (r 27) (rg 27) (im 1);
      Builder.binop f Instr.Eq (r 13) (rg 27) (im 0);
      Builder.branch f (rg 13) slice_end reqloop)
  in
  (* ---- scheduler loop ---- *)
  Builder.switch f mainloop;
  Builder.li f (r 4) globals;
  Builder.load f (r 5) ~base:(r 4) ~off:Sched.global_remaining ();
  Builder.binop f Instr.Eq (r 13) (rg 5) (im 0);
  Builder.branch f (rg 13) fin tryown;
  (* try-lock the own deque; on contention just retry from the top *)
  Builder.switch f tryown;
  Builder.atomic_rmw f Instr.Or (r 6) ~base:(r 24) ~off:Sched.deque_lock (im 1);
  Builder.binop f Instr.Eq (r 13) (rg 6) (im 0);
  Builder.branch f (rg 13) own_locked mainloop;
  Builder.switch f own_locked;
  Builder.load f (r 7) ~base:(r 24) ~off:Sched.deque_top ();
  Builder.load f (r 8) ~base:(r 24) ~off:Sched.deque_bottom ();
  Builder.binop f Instr.Eq (r 13) (rg 7) (rg 8);
  Builder.branch f (rg 13) own_empty own_pop;
  (* owner pops oldest-first: round-robin over the shards parked here *)
  Builder.switch f own_pop;
  Builder.binop f Instr.Rem (r 9) (rg 7) (im qcap);
  Builder.add f (r 9) (rg 9) (rg 24);
  Builder.load f (r 30) ~base:(r 9) ~off:Sched.deque_ring ();
  Builder.add f (r 7) (rg 7) (im 1);
  Builder.store f ~base:(r 24) ~off:Sched.deque_top (rg 7);
  Builder.store f ~base:(r 24) ~off:Sched.deque_lock (im 0);
  Builder.fence f;
  if do_steal then Builder.li f (r 20) 0;
  Builder.jump f runtask;
  Builder.switch f own_empty;
  Builder.store f ~base:(r 24) ~off:Sched.deque_lock (im 0);
  Builder.fence f;
  if do_steal then begin
    Builder.mv f (r 26) (r 25);
    Builder.jump f (the stealloop);
    (* scan the other cores' deques round-robin from our own id *)
    Builder.switch f (the stealloop);
    Builder.add f (r 26) (rg 26) (im 1);
    Builder.binop f Instr.Rem (r 26) (rg 26) (im ncores);
    Builder.binop f Instr.Eq (r 13) (rg 26) (rg 25);
    Builder.branch f (rg 13) mainloop (the trysteal);
    Builder.switch f (the trysteal);
    Builder.li f (r 8) deques;
    Builder.mul f (r 9) (rg 26) (im dq_words);
    Builder.add f (r 8) (rg 8) (rg 9);
    (* lock-free peek first: an idle scan over empty deques must not
       take their locks — the acquire RMWs would conflict with the
       victims' own push/pop critical sections and tax exactly the
       cores that are busy. A torn peek is harmless: non-empty is
       rechecked under the lock, empty is resampled next pass. *)
    Builder.load f (r 7) ~base:(r 8) ~off:Sched.deque_top ();
    Builder.load f (r 9) ~base:(r 8) ~off:Sched.deque_bottom ();
    Builder.binop f Instr.Eq (r 13) (rg 7) (rg 9);
    Builder.branch f (rg 13) (the stealloop) (the st_retry);
    (* A busy victim lock is waited out, not skipped: a pass through the
       scan loop is long enough that a deterministic interleaving can
       phase-lock the thief into forever missing the free window between
       a victim's release and its next acquire. The wait spins on a
       plain LOAD — loads are not conflict-checked and write nothing, so
       the holder's release store always lands — and only attempts the
       acquire RMW once the word reads free. (Spinning on the RMW itself
       would livelock: each failed attempt parks an uncommitted entry on
       the lock word that blocks the holder's release store.) The
       two-instruction load loop re-arms faster than the victim's path
       from release back to its next acquire, so the thief wins that
       race; an empty deque still advances the scan through st_empty, so
       the loop only tightens on a lock that is about to be released. *)
    Builder.switch f (the st_retry);
    Builder.load f (r 6) ~base:(r 8) ~off:Sched.deque_lock ();
    Builder.binop f Instr.Eq (r 13) (rg 6) (im 0);
    Builder.branch f (rg 13) (the st_rmw) (the st_retry);
    Builder.switch f (the st_rmw);
    Builder.atomic_rmw f Instr.Or (r 6) ~base:(r 8) ~off:Sched.deque_lock
      (im 1);
    Builder.binop f Instr.Eq (r 13) (rg 6) (im 0);
    Builder.branch f (rg 13) (the st_locked) (the st_retry);
    Builder.switch f (the st_locked);
    Builder.load f (r 7) ~base:(r 8) ~off:Sched.deque_top ();
    Builder.load f (r 9) ~base:(r 8) ~off:Sched.deque_bottom ();
    Builder.binop f Instr.Eq (r 13) (rg 7) (rg 9);
    Builder.branch f (rg 13) (the st_empty) (the st_take);
    Builder.switch f (the st_empty);
    Builder.store f ~base:(r 8) ~off:Sched.deque_lock (im 0);
    Builder.fence f;
    Builder.jump f (the stealloop);
    (* steal the newest entry — the victim's hottest shard *)
    Builder.switch f (the st_take);
    Builder.sub f (r 9) (rg 9) (im 1);
    Builder.binop f Instr.Rem (r 10) (rg 9) (im qcap);
    Builder.add f (r 10) (rg 10) (rg 8);
    Builder.load f (r 30) ~base:(r 10) ~off:Sched.deque_ring ();
    Builder.store f ~base:(r 8) ~off:Sched.deque_bottom (rg 9);
    Builder.store f ~base:(r 8) ~off:Sched.deque_lock (im 0);
    Builder.fence f;
    (* per-core steal counter: single-writer, read from the final
       NVM image by the host *)
    Builder.li f (r 4) (globals + Sched.global_steal ~core:0);
    Builder.add f (r 4) (rg 4) (rg 25);
    Builder.load f (r 5) ~base:(r 4) ~off:0 ();
    Builder.add f (r 5) (rg 5) (im 1);
    Builder.store f ~base:(r 4) ~off:0 (rg 5);
    Builder.li f (r 20) 1;
    Builder.jump f runtask
  end
  else Builder.jump f mainloop;
  (* resume the task's continuation from its descriptor *)
  Builder.switch f runtask;
  Builder.load f (r 0) ~base:(r 30) ~off:Sched.desc_cursor ();
  Builder.load f (r 1) ~base:(r 30) ~off:Sched.desc_remaining ();
  Builder.load f (r 2) ~base:(r 30) ~off:Sched.desc_table ();
  Builder.load f (r 28) ~base:(r 30) ~off:Sched.desc_seq ();
  Builder.load f (r 29) ~base:(r 30) ~off:Sched.desc_shard ();
  if txn <> None then begin
    Builder.load f (r 16) ~base:(r 30) ~off:Sched.desc_items ();
    Builder.add f (r 15) (rg 29) (im 1);
    Builder.load f (r 4) ~base:(r 30) ~off:Sched.desc_phase ();
    Builder.binop f Instr.Eq (r 13) (rg 4) (im 0);
    Builder.branch f (rg 13) slicestart (the pollwait)
  end
  else Builder.jump f slicestart;
  Builder.switch f slicestart;
  emit_header ();
  Builder.jump f (Option.get !reqloop_ref);
  (match txn with
  | None -> ()
  | Some stride ->
    (* a parked participant: the cursor still points at its txn
       marker; poll the decision and either resume past the wait or
       re-enqueue the task untouched (no header — no slice ran) *)
    Builder.switch f (the pollwait);
    Builder.load f (r 17) ~base:(r 0) ~off:1 ();
    Builder.sub f (r 17) (rg 17) (im 1);
    Builder.mul f (r 17) (rg 17) (im stride);
    Builder.add f (r 17) (rg 17) (rg 14);
    Builder.load f (r 22) ~base:(r 17) ~off:0 ();
    Builder.binop f Instr.Eq (r 13) (rg 22) (im 0);
    Builder.branch f (rg 13)
      (if do_steal then the repush_check else push_enter)
      (the resume);
    (* still undecided: re-enqueue untouched. A task popped from the own
       deque additionally triggers a steal scan before coming back — a
       core whose own tasks are all parked must not spin on them while
       other cores starve. A freshly STOLEN task that is still parked is
       re-enqueued plainly instead (r20 flag): letting it rescan would
       let two cores trade each other's parked tasks forever without
       ever popping their own ready work. *)
    if do_steal then begin
      Builder.switch f (the repush_check);
      Builder.binop f Instr.Eq (r 13) (rg 20) (im 0);
      Builder.branch f (rg 13) (the repush_enter) push_enter;
      Builder.switch f (the repush_enter);
      Builder.atomic_rmw f Instr.Or (r 6) ~base:(r 24) ~off:Sched.deque_lock
        (im 1);
      Builder.binop f Instr.Eq (r 13) (rg 6) (im 0);
      Builder.branch f (rg 13) (the repush_locked) (the repush_enter);
      Builder.switch f (the repush_locked);
      Builder.load f (r 8) ~base:(r 24) ~off:Sched.deque_bottom ();
      Builder.binop f Instr.Rem (r 9) (rg 8) (im qcap);
      Builder.add f (r 9) (rg 9) (rg 24);
      Builder.store f ~base:(r 9) ~off:Sched.deque_ring (rg 30);
      Builder.add f (r 8) (rg 8) (im 1);
      Builder.store f ~base:(r 24) ~off:Sched.deque_bottom (rg 8);
      Builder.store f ~base:(r 24) ~off:Sched.deque_lock (im 0);
      Builder.fence f;
      Builder.mv f (r 26) (r 25);
      Builder.jump f (the stealloop)
    end;
    Builder.switch f (the resume);
    emit_header ();
    Builder.load f (r 23) ~base:(r 0) ~off:1 ();
    Builder.jump f (the decide_opt);
    (* park: record the wait phase, write the continuation back and
       re-enqueue; the resumed run re-enters at pollwait *)
    Builder.switch f (the park);
    Builder.store f ~base:(r 30) ~off:Sched.desc_phase (im 1);
    Builder.jump f writeback);
  (* quantum expired with work left: back to ready and re-enqueue *)
  Builder.switch f slice_end;
  Builder.store f ~base:(r 30) ~off:Sched.desc_phase (im 0);
  Builder.jump f writeback;
  Builder.switch f writeback;
  Builder.store f ~base:(r 30) ~off:Sched.desc_cursor (rg 0);
  Builder.store f ~base:(r 30) ~off:Sched.desc_remaining (rg 1);
  if txn <> None then
    Builder.store f ~base:(r 30) ~off:Sched.desc_items (rg 16);
  Builder.store f ~base:(r 30) ~off:Sched.desc_seq (rg 28);
  Builder.jump f push_enter;
  (* push to the own deque; this acquire must succeed eventually, and
     does: every holder's critical section is short and commits *)
  Builder.switch f push_enter;
  Builder.atomic_rmw f Instr.Or (r 6) ~base:(r 24) ~off:Sched.deque_lock (im 1);
  Builder.binop f Instr.Eq (r 13) (rg 6) (im 0);
  Builder.branch f (rg 13) push_locked push_enter;
  Builder.switch f push_locked;
  Builder.load f (r 8) ~base:(r 24) ~off:Sched.deque_bottom ();
  Builder.binop f Instr.Rem (r 9) (rg 8) (im qcap);
  Builder.add f (r 9) (rg 9) (rg 24);
  Builder.store f ~base:(r 9) ~off:Sched.deque_ring (rg 30);
  Builder.add f (r 8) (rg 8) (im 1);
  Builder.store f ~base:(r 24) ~off:Sched.deque_bottom (rg 8);
  Builder.store f ~base:(r 24) ~off:Sched.deque_lock (im 0);
  Builder.fence f;
  Builder.jump f mainloop;
  (* shard drained: write the final continuation back (for post-mortem
     probes) and retire the task; the RMW seals the slice's tail *)
  Builder.switch f task_done;
  Builder.store f ~base:(r 30) ~off:Sched.desc_cursor (rg 0);
  Builder.store f ~base:(r 30) ~off:Sched.desc_remaining (rg 1);
  Builder.store f ~base:(r 30) ~off:Sched.desc_seq (rg 28);
  Builder.li f (r 4) globals;
  Builder.atomic_rmw f Instr.Add (r 5) ~base:(r 4) ~off:Sched.global_remaining
    (im (-1));
  Builder.fence f;
  Builder.jump f mainloop;
  Builder.switch f fin;
  Builder.halt f

(* The 2PC coordinator, one core for the whole store: for each txn in
   tid order, spin until every vote word of its ctrl block is nonzero
   (non-participants are pre-initialized to yes), decide commit iff all
   are yes, store the decision word, ack the outcome, and fence so the
   decision record and its acknowledgement commit atomically. *)
let emit_coord b ~shards ~stride =
  let f = Builder.func b "coord" in
  let cloop = Builder.block f "cloop" in
  let ctxn = Builder.block f "ctxn" in
  let cscan = Builder.block f "cscan" in
  let crd = Builder.block f "crd" in
  let cvote = Builder.block f "cvote" in
  let cdecide = Builder.block f "cdecide" in
  let cfin = Builder.block f "cfin" in
  (* entry: r1 = txn count, r2 = ctrl base; r4 = txn index *)
  Builder.li f (r 4) 0;
  Builder.jump f cloop;
  Builder.switch f cloop;
  Builder.binop f Instr.Lt (r 13) (rg 4) (rg 1);
  Builder.branch f (rg 13) ctxn cfin;
  Builder.switch f ctxn;
  Builder.mul f (r 5) (rg 4) (im stride);
  Builder.add f (r 5) (rg 5) (rg 2);
  Builder.li f (r 6) 1;
  Builder.li f (r 7) 1;
  Builder.jump f cscan;
  Builder.switch f cscan;
  Builder.binop f Instr.Le (r 13) (rg 7) (im shards);
  Builder.branch f (rg 13) crd cdecide;
  Builder.switch f crd;
  Builder.add f (r 8) (rg 5) (rg 7);
  Builder.load f (r 9) ~base:(r 8) ~off:0 ();
  Builder.binop f Instr.Eq (r 13) (rg 9) (im 0);
  Builder.branch f (rg 13) crd cvote;
  Builder.switch f cvote;
  Builder.binop f Instr.Ne (r 13) (rg 9) (im 2);
  Builder.binop f Instr.And (r 6) (rg 6) (rg 13);
  Builder.add f (r 7) (rg 7) (im 1);
  Builder.jump f cscan;
  Builder.switch f cdecide;
  Builder.sub f (r 8) (im 2) (rg 6);  (* 1 = commit, 2 = abort *)
  Builder.store f ~base:(r 5) ~off:0 (rg 8);
  Builder.add f (r 9) (rg 8) (im 2);  (* Committed = 3, Aborted = 4 *)
  Builder.mul f (r 9) (rg 9) (im Wire.payload_limit);
  Builder.add f (r 9) (rg 9) (rg 4);
  Builder.add f (r 9) (rg 9) (im 1);
  Builder.out f (rg 9);
  Builder.fence f;
  Builder.add f (r 4) (rg 4) (im 1);
  Builder.jump f cloop;
  Builder.switch f cfin;
  Builder.halt f

let capacity_for key_space = max 8 (2 * key_space)

let check_preload ~shards ~key_space preload =
  let n = Array.length preload in
  if n <> 0 && n <> shards then
    invalid_arg "Kvstore.build: preload must have one entry per shard";
  Array.iter
    (fun pairs ->
      Array.iter
        (fun (key, value) ->
          if key < 1 || key > key_space then
            invalid_arg "Kvstore.build: preload key out of key space";
          if value < 0 || value >= Wire.payload_limit then
            invalid_arg "Kvstore.build: preload value out of payload range")
        pairs)
    preload

(* Host-side bulk fill of one shard table: replay the emitted probe
   discipline (slot = key mod capacity, advance by one while another key
   occupies the slot, overwrite in place when the key is found) over the
   preload pairs in array order. By construction the resulting words are
   exactly what the op-by-op [Put] path would leave behind, so a
   preloaded store is indistinguishable from one that served the same
   puts — validated by test_service's loader-equivalence test. *)
let fill_table ~capacity pairs =
  let words = Array.make (capacity * 2) 0 in
  Array.iter
    (fun (key, value) ->
      let rec go slot steps =
        if steps >= capacity then
          invalid_arg "Kvstore.build: preload overflows table capacity"
        else
          let k = words.(slot * 2) in
          if k = key || k = 0 then begin
            words.(slot * 2) <- key;
            words.((slot * 2) + 1) <- value
          end
          else go ((slot + 1) mod capacity) (steps + 1)
      in
      go (key mod capacity) 0)
    pairs;
  words

(* Empty shards get a plain (zeroed, per-word) allocation; preloaded
   shards go through the blob path so a million-key table costs one
   array in the program, not millions of data-list cells. *)
let alloc_tables b ~capacity preload =
  Array.map
    (fun pairs ->
      if Array.length pairs = 0 then Builder.alloc b ~words:(capacity * 2)
      else Builder.alloc_blob b (fill_table ~capacity pairs))
    preload

let round_line n = (n + 7) / 8 * 8
let stride_for ~shards = round_line (1 + shards)

let local_counts ~shards (t : Wire.txn) =
  let local = Array.make shards 0 in
  Array.iter (fun (s, _) -> local.(s) <- local.(s) + 1) t.items;
  local

let check_txns ~shards ~requests ~txns =
  Array.iteri
    (fun i (t : Wire.txn) ->
      if t.tid <> i + 1 then
        invalid_arg "Kvstore: txn ids must be 1..n in array order";
      Wire.check_txn ~shards t)
    txns;
  let expect = Array.map (local_counts ~shards) txns in
  Array.iteri
    (fun s reqs ->
      let last = ref 0 in
      let seen = Array.make (Array.length txns) false in
      Array.iter
        (fun (req : Wire.request) ->
          if req.op = Wire.Txn then begin
            let tid = req.key in
            if tid > Array.length txns then
              invalid_arg "Kvstore: marker for an unknown txn";
            if tid <= !last then
              invalid_arg "Kvstore: txn markers out of tid order";
            if expect.(tid - 1).(s) = 0 then
              invalid_arg "Kvstore: marker on a non-participant shard";
            if req.value <> expect.(tid - 1).(s) then
              invalid_arg "Kvstore: marker item count mismatch";
            seen.(tid - 1) <- true;
            last := tid
          end)
        reqs;
      Array.iteri
        (fun ti local ->
          if local.(s) > 0 && not seen.(ti) then
            invalid_arg "Kvstore: participant shard missing its txn marker")
        expect)
    requests

let alloc_mailboxes b requests =
  Array.map
    (fun reqs ->
      let words =
        Array.concat (Array.to_list (Array.map Wire.encode_request reqs))
      in
      (* a shard with no admitted requests still owns a (zeroed) box *)
      let words = if Array.length words = 0 then [| 0 |] else words in
      Builder.alloc_init b words)
    requests

let alloc_ctrl b ~shards ~stride txns =
  let ntxn = Array.length txns in
  if ntxn = 0 then 0
  else begin
    let base = Builder.alloc b ~words:(ntxn * stride) in
    (* non-participant vote words start at yes so the coordinator
       needs no participant mask; decision words start at 0 *)
    Array.iteri
      (fun ti t ->
        let local = local_counts ~shards t in
        Array.iteri
          (fun s c ->
            if c = 0 then
              Builder.init_word b ~addr:(base + (ti * stride) + 1 + s) 1)
          local)
      txns;
    base
  end

let alloc_items b ~shards txns =
  if Array.length txns = 0 then Array.make shards 0
  else
    Array.init shards (fun s ->
        let words =
          Array.concat
            (List.concat_map
               (fun (t : Wire.txn) ->
                 List.filter_map
                   (fun (shard, item) ->
                     if shard = s then Some (Wire.encode_request item)
                     else None)
                   (Array.to_list t.items))
               (Array.to_list txns))
        in
        let words = if Array.length words = 0 then [| 0 |] else words in
        Builder.alloc_init b words)

let build ?(batch = 8) ?(txns = [||]) ?sched ?(preload = [||]) ~key_space
    ~requests () =
  let shards = Array.length requests in
  if shards = 0 then invalid_arg "Kvstore.build: no shards";
  if key_space < 1 then invalid_arg "Kvstore.build: key_space must be positive";
  if batch < 1 then invalid_arg "Kvstore.build: batch must be positive";
  let ntxn = Array.length txns in
  Array.iter (fun reqs -> Array.iter Wire.check_request reqs) requests;
  check_txns ~shards ~requests ~txns;
  check_preload ~shards ~key_space preload;
  let preload =
    if Array.length preload = 0 then Array.make shards [||] else preload
  in
  let capacity = capacity_for key_space in
  let stride = stride_for ~shards in
  let txn = if ntxn = 0 then None else Some stride in
  match sched with
  | None ->
    let cores = shards + if ntxn > 0 then 1 else 0 in
    Capri_runtime.Layout.check_cores cores;
    let b = Builder.create () in
    emit_shard b ~batch ~txn;
    if ntxn > 0 then emit_coord b ~shards ~stride;
    let mailboxes = alloc_mailboxes b requests in
    let tables = alloc_tables b ~capacity preload in
    let ctrl = alloc_ctrl b ~shards ~stride txns in
    let items = alloc_items b ~shards txns in
    Capri_runtime.Layout.check_heap ~words:(Builder.extent b);
    let program = Builder.finish b ~main:"shard" in
    {
      shards;
      cores;
      key_space;
      capacity;
      batch;
      requests;
      preload;
      txns;
      program;
      mailboxes;
      tables;
      items;
      ctrl;
      txn_stride = stride;
      sched = None;
      descs = 0;
      deques = 0;
      globals = 0;
    }
  | Some scfg ->
    Sched.check scfg;
    let ncores = scfg.Sched.cores in
    let cores = ncores + if ntxn > 0 then 1 else 0 in
    Capri_runtime.Layout.check_cores cores;
    let b = Builder.create () in
    (* the worker code bakes area bases in as immediates, so all
       allocation happens before emission in scheduled stores *)
    let mailboxes = alloc_mailboxes b requests in
    let tables = alloc_tables b ~capacity preload in
    let ctrl = alloc_ctrl b ~shards ~stride txns in
    let items = alloc_items b ~shards txns in
    let descs = Builder.alloc b ~words:(shards * Sched.desc_words) in
    Array.iteri
      (fun s reqs ->
        let d = descs + (s * Sched.desc_words) in
        Builder.init_word b ~addr:(d + Sched.desc_cursor) mailboxes.(s);
        Builder.init_word b ~addr:(d + Sched.desc_remaining)
          (Array.length reqs);
        Builder.init_word b ~addr:(d + Sched.desc_table) tables.(s);
        Builder.init_word b ~addr:(d + Sched.desc_items) items.(s);
        Builder.init_word b ~addr:(d + Sched.desc_shard) s)
      requests;
    let dq_words = Sched.deque_words ~shards in
    let deques = Builder.alloc b ~words:(ncores * dq_words) in
    (* each non-empty shard starts on its home core [s mod ncores] —
       static pinning folded over the available cores; stealing then
       rebalances at runtime *)
    let bottoms = Array.make ncores 0 in
    Array.iteri
      (fun s reqs ->
        if Array.length reqs > 0 then begin
          let c = s mod ncores in
          let dq = deques + (c * dq_words) in
          Builder.init_word b
            ~addr:(dq + Sched.deque_ring + bottoms.(c))
            (descs + (s * Sched.desc_words));
          bottoms.(c) <- bottoms.(c) + 1
        end)
      requests;
    Array.iteri
      (fun c n ->
        if n > 0 then
          Builder.init_word b
            ~addr:(deques + (c * dq_words) + Sched.deque_bottom)
            n)
      bottoms;
    let live = Array.fold_left (fun acc n -> acc + n) 0 bottoms in
    let globals = Builder.alloc b ~words:(Sched.globals_words ~cores:ncores) in
    if live > 0 then
      Builder.init_word b ~addr:(globals + Sched.global_remaining) live;
    emit_worker b ~batch ~txn ~sched:scfg ~shards ~capacity ~ctrl ~deques
      ~globals;
    if ntxn > 0 then emit_coord b ~shards ~stride;
    Capri_runtime.Layout.check_heap ~words:(Builder.extent b);
    let program = Builder.finish b ~main:"worker" in
    {
      shards;
      cores;
      key_space;
      capacity;
      batch;
      requests;
      preload;
      txns;
      program;
      mailboxes;
      tables;
      items;
      ctrl;
      txn_stride = stride;
      sched = Some scfg;
      descs;
      deques;
      globals;
    }

let workers t =
  match t.sched with
  | None -> t.shards
  | Some scfg -> scfg.Sched.cores

let thread_specs t =
  let ntxn = Array.length t.txns in
  let coord_thread =
    if ntxn = 0 then []
    else
      [ { Runtime.Executor.func = "coord"; args = [ (r 1, ntxn); (r 2, t.ctrl) ] } ]
  in
  match t.sched with
  | None ->
    List.init t.shards (fun s ->
        {
          Runtime.Executor.func = "shard";
          args =
            [
              (r 0, t.mailboxes.(s));
              (r 1, Array.length t.requests.(s));
              (r 2, t.tables.(s));
              (r 3, t.capacity);
            ]
            @ (if ntxn = 0 then []
               else [ (r 14, t.ctrl); (r 15, 1 + s); (r 16, t.items.(s)) ]);
        })
    @ coord_thread
  | Some scfg ->
    let dq_words = Sched.deque_words ~shards:t.shards in
    List.init scfg.Sched.cores (fun c ->
        {
          Runtime.Executor.func = "worker";
          args = [ (r 24, t.deques + (c * dq_words)); (r 25, c) ];
        })
    @ coord_thread

let lookup t mem ~shard ~key =
  let table = t.tables.(shard) in
  let cap = t.capacity in
  let rec go slot steps =
    if steps >= cap then None
    else
      let k = Arch.Memory.read mem (table + (slot * 2)) in
      if k = key then
        let v = Arch.Memory.read mem (table + (slot * 2) + 1) in
        if v = -1 then None else Some v
      else if k = 0 then None
      else go ((slot + 1) mod cap) (steps + 1)
  in
  go (key mod cap) 0

let ctrl_decision t mem ~tid =
  Arch.Memory.read mem (t.ctrl + ((tid - 1) * t.txn_stride))

let ctrl_vote t mem ~tid ~shard =
  Arch.Memory.read mem (t.ctrl + ((tid - 1) * t.txn_stride) + 1 + shard)

let steal_count t mem ~core =
  match t.sched with
  | None -> 0
  | Some _ -> Arch.Memory.read mem (t.globals + Sched.global_steal ~core)

let steal_total t mem =
  match t.sched with
  | None -> 0
  | Some scfg ->
    let total = ref 0 in
    for c = 0 to scfg.Sched.cores - 1 do
      total := !total + steal_count t mem ~core:c
    done;
    !total
