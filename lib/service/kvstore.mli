(** The store itself, written in the Capri IR.

    [build] emits one [shard] handler function — an open-addressing hash
    table (two words per slot, key 0 = empty) over the NVM heap with
    get/put/delete/cas handled inline — plus per-shard request mailboxes
    and tables in disjoint data-segment allocations. Each shard core runs
    [shard] with its own mailbox/table base registers; a fence every
    [batch] requests bounds how long a region (and therefore an
    acknowledgement) can stay open.

    When the workload carries transactions, [build] additionally emits a
    [coord] function (one extra core) and gives each shard a 2PC
    participant path: a [Txn] marker in the mailbox makes the shard
    compute a vote over its local items (every [Cas] must match the
    pre-transaction state), store it in its own word of the
    transaction's {e ctrl block}, fence — sealing the vote record in its
    own failure-atomic region — and then spin on the block's decision
    word. The coordinator waits for all vote words (non-participants are
    pre-initialized to yes), stores the decision and acks the outcome in
    one fenced region. On commit the shard applies its items in order,
    one response each; on abort it answers a single [Aborted] response.
    Inter-core persist ordering (the word-granular conflict fence) plus
    deterministic re-execution after resume make the protocol
    crash-consistent: a crash at any cycle either fully applies or fully
    discards a transaction after recovery.

    The handler contains no persistence-aware code: no logging, no
    flushes, no recovery paths. Compiling it through the Capri pipeline
    and running it under the persistence engine is what makes the store
    durable. Deletion leaves the key in place with a [-1] value sentinel
    so probe chains stay intact; since [capacity > key_space], probes
    always terminate.

    With [?sched], [build] emits a [worker] function instead of [shard]:
    shards become descriptor-backed tasks multiplexed over
    [sched.cores] cores through per-core work-stealing deques (layout
    and commit-ordering argument in {!Sched}). Workers announce every
    executed slice with a {!Wire.slice_header} word; a parked 2PC
    participant is re-enqueued instead of spinning, so fewer cores than
    shards cannot deadlock the protocol. All scheduler state is
    ordinary NVM data — crash recovery needs nothing scheduler-aware. *)

type t = {
  shards : int;
  cores : int;
      (** shards (or [sched.cores] under the scheduler), plus the
          coordinator core when txns exist *)
  key_space : int;  (** client keys are [1..key_space] *)
  capacity : int;  (** slots per shard table *)
  batch : int;
  requests : Wire.request array array;  (** per shard, mailbox order *)
  preload : (int * int) array array;
      (** per shard: [(key, value)] pairs bulk-loaded into the table
          before the run (always [shards] entries, empty when nothing
          was preloaded). Oracles must treat these as already-durable
          committed state. *)
  txns : Wire.txn array;  (** tid [i+1] at index [i] *)
  program : Capri_ir.Program.t;
  mailboxes : int array;  (** per shard: mailbox base address *)
  tables : int array;  (** per shard: table base address *)
  items : int array;
      (** per shard: txn item area base (items of that shard in tid then
          item order, {!Wire.words_per_request} words each; 0 when the
          store has no txns) *)
  ctrl : int;  (** 2PC ctrl area base (0 when no txns) *)
  txn_stride : int;
      (** words per ctrl block: \[decision; vote_shard0; ...\] padded to
          a cache line *)
  sched : Sched.cfg option;  (** the scheduler the store was built for *)
  descs : int;  (** task descriptor area base (0 when unscheduled) *)
  deques : int;  (** per-core deque area base (0 when unscheduled) *)
  globals : int;  (** scheduler globals base (0 when unscheduled) *)
}

val fault_skip_decision : bool Atomic.t
(** Oracle-sensitivity knob, read at [build] time: the participant path
    skips the decision spin and treats its own vote as the global
    decision — a yes-voting shard applies its items even when the
    transaction aborts. The fuzz campaign's serializability oracle must
    catch this. Default [false]. *)

val capacity_for : int -> int
(** Table slots used for a given key space (2x, minimum 8). *)

val stride_for : shards:int -> int
(** Ctrl-block stride for a store with this many shards. *)

val build :
  ?batch:int ->
  ?txns:Wire.txn array ->
  ?sched:Sched.cfg ->
  ?preload:(int * int) array array ->
  key_space:int ->
  requests:Wire.request array array ->
  unit ->
  t
(** One shard per element of [requests]. Raises [Invalid_argument] on an
    empty shard list, a non-positive key space or batch, more cores than
    {!Capri_runtime.Layout.max_cores}, an out-of-range request, an
    inconsistent transaction set (tids not [1..n], markers missing, out
    of tid order, on non-participant shards, or with wrong item
    counts), a bad scheduler config, a preload with the wrong shard
    count or out-of-range keys/values, or a store too big for
    {!Capri_runtime.Layout.check_heap}.

    [?preload] seeds each shard's table with [(key, value)] pairs as
    already-committed durable state, installed host-side by replaying
    the emitted probe discipline in array order — byte-identical to what
    serving the same [Put]s would leave — and shipped as one program
    blob per shard rather than per-word data cells, so million-key
    stores build and load in O(keys) with small constants. With [?sched], non-empty shards
    start pinned to their home core [shard mod cores] and migrate only
    by stealing, so [{steal = false}] reproduces static pinning folded
    over the available cores. *)

val workers : t -> int
(** Cores that emit shard responses: [shards] when pinned, the
    scheduler's core count otherwise. The coordinator, when present, is
    core [workers t]. *)

val thread_specs : t -> Capri_runtime.Executor.thread_spec list
(** One thread per shard (pinned) or per scheduler core (scheduled)
    plus, when txns exist, the coordinator thread on the last core,
    parameterized via argument registers. *)

val lookup : t -> Capri_arch.Memory.t -> shard:int -> key:int -> int option
(** Host-side probe of a shard's table in a memory image (used by the
    durability oracle against recovered NVM). *)

val ctrl_decision : t -> Capri_arch.Memory.t -> tid:int -> int
(** The txn's durable decision word: 0 undecided, 1 commit, 2 abort. *)

val ctrl_vote : t -> Capri_arch.Memory.t -> tid:int -> shard:int -> int
(** A shard's durable vote word: 0 unvoted, 1 yes, 2 no
    (non-participants read 1 from the initial image). *)

val steal_count : t -> Capri_arch.Memory.t -> core:int -> int
(** Tasks core [core] stole during the run, from the per-core counter
    in the scheduler globals (0 for unscheduled stores). *)

val steal_total : t -> Capri_arch.Memory.t -> int
(** Sum of {!steal_count} over all scheduler cores. *)
