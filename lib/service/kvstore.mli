(** The store itself, written in the Capri IR.

    [build] emits one [shard] handler function — an open-addressing hash
    table (two words per slot, key 0 = empty) over the NVM heap with
    get/put/delete/cas handled inline — plus per-shard request mailboxes
    and tables in disjoint data-segment allocations. Each shard core runs
    [shard] with its own mailbox/table base registers; a fence every
    [batch] requests bounds how long a region (and therefore an
    acknowledgement) can stay open.

    The handler contains no persistence-aware code: no logging, no
    flushes, no recovery paths. Compiling it through the Capri pipeline
    and running it under the persistence engine is what makes the store
    durable. Deletion leaves the key in place with a [-1] value sentinel
    so probe chains stay intact; since [capacity > key_space], probes
    always terminate. *)

type t = {
  shards : int;
  key_space : int;  (** client keys are [1..key_space] *)
  capacity : int;  (** slots per shard table *)
  batch : int;
  requests : Wire.request array array;  (** per shard, mailbox order *)
  program : Capri_ir.Program.t;
  mailboxes : int array;  (** per shard: mailbox base address *)
  tables : int array;  (** per shard: table base address *)
}

val capacity_for : int -> int
(** Table slots used for a given key space (2x, minimum 8). *)

val build :
  ?batch:int -> key_space:int -> requests:Wire.request array array -> unit -> t
(** One shard per element of [requests]. Raises [Invalid_argument] on an
    empty shard list, a non-positive key space or batch, more shards than
    {!Capri_runtime.Layout.max_cores}, or an out-of-range request. *)

val thread_specs : t -> Capri_runtime.Executor.thread_spec list
(** One thread per shard, parameterized via argument registers. *)

val lookup : t -> Capri_arch.Memory.t -> shard:int -> key:int -> int option
(** Host-side probe of a shard's table in a memory image (used by the
    durability oracle against recovered NVM). *)
