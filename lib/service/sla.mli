(** Service-level accounting and the serializability + durability
    oracle.

    The contract the serving layer sells: once a request — or a
    transaction outcome — is acknowledged, a power failure at {e any}
    point leaves the store with that effect durable, and the response
    stream is never lost, duplicated or reordered. Transactions commit
    or abort atomically across shards: the oracle replays the whole 2PC
    protocol deterministically on the host (votes against each
    participant's pre-transaction state, decisions in tid order) and
    requires every acked response, every durable table and every durable
    vote/decision record to agree with that unique serializable
    history. [check] enforces all of it against every crash image of a
    run plus the completed run's full response streams. *)

(** Host-side reference model of one shard's table. *)
module Model : sig
  type t

  val create : key_space:int -> t
  val copy : t -> t
  val get : t -> int -> int option

  val seed : t -> (int * int) array -> unit
  (** Install bulk-loaded [(key, value)] pairs as already-committed
      state. [replay] and the crash oracle's per-prefix states start
      every shard model from its {!Kvstore.t.preload}. *)

  val apply : t -> Wire.request -> int
  (** Mutates the model; returns the response word the shard handler
      must emit for this request. Raises on a [Txn] marker — those
      expand through the protocol replay. *)

  val apply_item : t -> Wire.request -> int
  (** Commit-time application of a transaction item: [Cas] was
      validated at prepare, so put/cas store unconditionally; get reads
      the current state. *)
end

val expected_responses : key_space:int -> Wire.request array -> int array
(** Single-op streams only (no markers). *)

type protocol
(** The replayed 2PC history of a store: per-core expected response
    streams, per-txn votes and decisions, per-shard micro-op
    expansions. *)

val replay : Kvstore.t -> protocol

val expected_streams : protocol -> int array array
(** Per core, coordinator last when the store has transactions. *)

type resp_meta = { kind : string; tid : int; key : int }
(** Classification of one expected response: [kind] is ["read"],
    ["update"], ["insert"] (a put on an absent key) or ["txn"] (items,
    abort acknowledgements and coordinator outcomes); [tid] is the
    owning transaction id, [-1] for singles; [key] is the request's
    global key, [-1] for abort acknowledgements and coordinator
    outcomes. *)

val response_meta : protocol -> resp_meta array array
(** Aligned index-for-index with {!expected_streams}. *)

val normalize :
  kv:Kvstore.t ->
  word:('a -> int) ->
  'a list array ->
  'a list array * string list
(** Physical per-core streams to logical per-shard streams (coordinator
    last), the shape {!expected_streams} predicts. Identity for pinned
    stores; for scheduled stores the worker streams are demultiplexed by
    their slice headers (via {!Sched.views}, headers stripped). The
    string list reports demux protocol errors — non-empty means a slice
    was lost, duplicated or reordered, which {!check} treats as a
    violation. *)

val tenant_of :
  tenants:int -> space:int -> txn_tenant:int array -> resp_meta -> int
(** Tenant owning one expected response: transaction responses by the
    issuing tenant ([txn_tenant].(tid-1)), singles by their key's
    namespace, anything outside every namespace (the shared hot key) and
    single-tenant stores to tenant 0. *)

val decisions : protocol -> bool array

val txn_outcomes : Kvstore.t -> int * int
(** [(commits, aborts)] of the store's transactions under the replay. *)

val durable_slack : int
(** Micro-ops the durable table may run ahead of the acked count (a
    mutation's region can commit while the response's region is still
    open). *)

type violation = { shard : int; crash_index : int; detail : string }
(** [shard] is a core index (the coordinator is core [shards]);
    [crash_index = -1] marks a completion check failure. *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  kv:Kvstore.t ->
  images:Capri_arch.Persist.image list ->
  final:int list array ->
  (unit, violation) result
(** For every crash image: each core's acked responses must be a prefix
    of the protocol's answers; each recovered table must equal the
    protocol replayed to some point in [\[acked, acked+durable_slack\]]
    micro-ops; each durable vote/decision word must be 0 or the
    protocol's value, and must be the protocol's value once its owner
    acked past the record's sealing point. For the completed run: the
    response streams of every core must equal the protocol's answers
    exactly (exactly-once delivery). Scheduled stores are checked
    through {!normalize}: the per-shard views reassembled from the
    slice headers must satisfy everything a pinned shard core must —
    commit ordering across a steal (the thief's lock acquire conflicts
    with the victim's release) makes per-shard prefixes meaningful even
    when consecutive slices ran on different cores, and demux errors
    are themselves violations. *)

type stats = {
  ops : int;  (** acknowledged responses (txn item/outcome acks included) *)
  rejected : int;  (** refused by admission control *)
  cycles : int;  (** wall-clock including modeled recovery time *)
  throughput : float;  (** acked ops per kilocycle *)
  p50 : float;
  p99 : float;  (** request latency percentiles, cycles *)
  recoveries : int;
  mean_recovery : float;  (** modeled cycles per recovery *)
  availability : float;
      (** fraction of the run outside modeled recovery time, in [0,1] *)
  txn_commits : int;
  txn_aborts : int;
}

val request_latencies : loop:Client.loop -> (int * int) list -> int list
(** Per-request latency of one core's [(response, ack cycle)] stream. *)

val request_intervals : loop:Client.loop -> (int * int) list -> (int * int * int) list
(** Per-request [(start, ack, latency)] of one core's stream: [start]
    is the previous ack (closed loop) or the nominal arrival (open
    loop), clamped so [start <= ack]; [latency] agrees with
    {!request_latencies}. *)

val stats :
  ?txns:int * int ->
  loop:Client.loop ->
  acks:(int * int) list array ->
  cycles:int ->
  rejected:int ->
  recoveries:int ->
  recovery_cycles:int ->
  unit ->
  stats
(** Closed-loop latency is the inter-ack gap; open-loop latency is ack
    minus nominal arrival (clamped to 1). [txns] is the store's
    [(commits, aborts)] tally, default [(0, 0)]. *)

val pp_stats : Format.formatter -> stats -> unit
