(** Service-level accounting and the acked-durability oracle.

    The contract the serving layer sells: once a request is acknowledged
    — its response's region committed at the back-end proxy — a power
    failure at {e any} point leaves the store with that request's effect
    durable, and the response stream is never lost, duplicated or
    reordered. [check] enforces it against every crash image of a run
    plus the completed run's full response streams. *)

(** Host-side reference model of one shard's table. *)
module Model : sig
  type t

  val create : key_space:int -> t
  val copy : t -> t
  val get : t -> int -> int option
  val apply : t -> Wire.request -> int
  (** Mutates the model; returns the response word the shard handler
      must emit for this request. *)
end

val expected_responses : key_space:int -> Wire.request array -> int array

val durable_slack : int
(** Requests the durable table may run ahead of the acked count (a
    mutation's region can commit while the response's region is still
    open). *)

type violation = { shard : int; crash_index : int; detail : string }
(** [crash_index = -1] marks a completion check failure. *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  kv:Kvstore.t ->
  images:Capri_arch.Persist.image list ->
  final:int list array ->
  (unit, violation) result
(** For every crash image: each shard's acked responses must be a prefix
    of the model's answers, and the recovered table must equal the model
    replayed to some point in [\[acked, acked + durable_slack\]]. For the
    completed run: the response streams must equal the model's answers
    exactly (exactly-once delivery). *)

type stats = {
  ops : int;  (** acknowledged requests *)
  rejected : int;  (** refused by admission control *)
  cycles : int;  (** wall-clock including modeled recovery time *)
  throughput : float;  (** acked ops per kilocycle *)
  p50 : float;
  p99 : float;  (** request latency percentiles, cycles *)
  recoveries : int;
  mean_recovery : float;  (** modeled cycles per recovery *)
}

val request_latencies : loop:Client.loop -> (int * int) list -> int list
(** Per-request latency of one shard's [(response, ack cycle)] stream. *)

val stats :
  loop:Client.loop ->
  acks:(int * int) list array ->
  cycles:int ->
  rejected:int ->
  recoveries:int ->
  recovery_cycles:int ->
  stats
(** Closed-loop latency is the inter-ack gap; open-loop latency is ack
    minus nominal arrival (clamped to 1). *)

val pp_stats : Format.formatter -> stats -> unit
