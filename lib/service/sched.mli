(** Work-stealing shard scheduler: configuration, in-machine memory
    layout, and the host-side stream demultiplexer.

    Under the scheduler, shards stop being pinned one-per-core. Each
    shard becomes a lightweight task — an eight-word {e descriptor} in
    simulated NVM holding its continuation state (mailbox cursor,
    remaining requests, table handle, item cursor, wait phase, slice
    sequence number) — and a pool of worker cores multiplexes the
    descriptors through per-core work-stealing deques. A worker runs a
    shard for a bounded {e quantum} of requests (one {e slice}), then
    re-enqueues it; an idle worker steals the newest task from a
    victim's deque, so a starving hot shard migrates to a cold core and
    its stores commit through the {e thief's} proxy path.

    All scheduler state (locks, deque indices, descriptors) lives in
    ordinary simulated NVM words, so it persists and recovers exactly
    like table data: whole-system persistence needs no scheduler-aware
    recovery code. Mutual exclusion rides the word-granular conflict
    fence — a deque's lock word is taken with [Atomic_rmw Or] and
    released with a plain store sealed by a fence, so a successful
    acquire by a thief store-conflicts against (and therefore orders
    after the commit of) the previous holder's critical section. That
    commit ordering is what keeps per-shard ack cycles monotone across
    a migration.

    Because a core's output stream now interleaves slices of many
    shards, each worker announces every slice with a {!Wire.slice_header}
    word before the slice's responses. The demultiplexer in this module
    splits the per-core streams back into per-shard {e views} over which
    the existing SLA oracle and latency accounting run unchanged —
    stealing is observably equivalent to static pinning by construction,
    and the qcheck property in the test suite holds the two modes to the
    same acked streams and durable tables. *)

type cfg = { cores : int; quantum : int; steal : bool }
(** [cores] simulated worker cores (>= 1; the 2PC coordinator, when
    present, runs on one extra dedicated core). [quantum] is the number
    of requests a worker executes per slice before re-enqueueing the
    shard (>= 1). [steal = false] keeps the deques but disables
    stealing — each shard stays on its home core, giving the static
    pinning reference behaviour under the same instruction substrate. *)

val default : cfg
(** 2 cores, quantum 4, stealing on. *)

val check : cfg -> unit
(** Raises [Invalid_argument] on a non-positive field. *)

(** {2 In-machine layout}

    These constants describe the scheduler's simulated-NVM structures;
    {!Kvstore.build} allocates them and emits worker code against them,
    and tests probe them through the same offsets. *)

val desc_words : int
(** Words per shard descriptor (8 = one cache line). *)

val desc_cursor : int
val desc_remaining : int
val desc_table : int
val desc_items : int
val desc_phase : int
(** 0 = ready; 1 = parked waiting for a 2PC decision. *)

val desc_seq : int
(** Next slice sequence number for the shard. *)

val desc_shard : int

val deque_lock : int
val deque_top : int
(** Owner pops at [top] (FIFO) — oldest task first, so a re-enqueued
    waiting task cannot starve ready tasks behind it. *)

val deque_bottom : int
(** Pushes land at [bottom]; a thief steals the [bottom - 1] entry —
    the most recently re-enqueued, i.e. hottest, shard. *)

val deque_ring : int
(** First ring slot; the ring holds descriptor addresses. *)

val deque_words : shards:int -> int
(** Line-rounded size of one per-core deque whose ring can hold every
    shard at once (indices are monotone and wrapped mod [shards]). *)

val globals_words : cores:int -> int
(** Size of the scheduler globals area: word 0 is the live-task
    countdown workers poll to halt, words [8 + c] are per-core steal
    counters (single-writer, read back from the final NVM image). *)

val global_remaining : int
val global_steal : core:int -> int

(** {2 Stream demultiplexing} *)

type 'a slice = {
  shard : int;
  seq : int;
  core : int;  (** worker core that executed the slice *)
  header : 'a;  (** the carrier of the slice's header word *)
  body : 'a list;  (** the slice's response words, in order *)
}

val demux :
  word:('a -> int) ->
  shards:int ->
  'a list array ->
  'a slice list array * string list
(** Split per-worker-core streams (header-word announced, as emitted by
    the scheduler's workers) into per-shard slice lists sorted by
    [seq]. [word] projects the carried element to its wire word, so the
    same demux serves raw response words and [(word, ack_cycle)] pairs.
    Returns the per-shard slices plus a list of structural-error
    descriptions (stream starts without a header, duplicate or gapped
    seq, seq gaps mean a lost slice) — callers treating the stream as
    an oracle input must count any error as a violation, while stats
    paths may render what parsed. A final crash can truncate the last
    slice of each shard, so only seq-continuity, not slice fullness, is
    checked. *)

val views :
  word:('a -> int) -> shards:int -> 'a list array -> 'a list array * string list
(** Demux then flatten: per-shard response streams with headers
    stripped, ordered by slice seq — index [s < shards] is shard [s]'s
    view. Any extra input streams beyond the worker cores (the
    coordinator's) must be split off by the caller first. *)

type migration = { shard : int; seq : int; from_core : int; to_core : int }

val migrations : word:('a -> int) -> shards:int -> 'a list array -> migration list
(** Steals visible in the output streams: consecutive slices of one
    shard executed by different cores. Listed in (shard, seq) order;
    [seq] is the sequence number of the slice that ran on [to_core]. *)

val queue_depth : period:int -> arrivals:int -> acks:int list -> int
(** Peak queue depth of one shard under an open-loop client: requests
    [0 .. arrivals-1] arrive at cycles [i * period] and leave at their
    ack cycles (in stream order). The noisy-neighbor bench reports the
    worst shard's peak as the imbalance measure that stealing must
    strictly improve. *)
