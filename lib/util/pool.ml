(* Fixed-size Domain work pool.

   Tasks are closures pushed onto a shared FIFO protected by a mutex;
   [jobs - 1] worker domains plus any domain blocked in [await] drain it.
   [await] is help-first: while its future is unresolved it executes other
   queued tasks instead of sleeping, so nested submission (a task that
   itself submits and awaits subtasks) cannot deadlock — tasks form a DAG
   and some runnable task always exists.

   Determinism: the pool affects only *when* tasks run, never what they
   compute; [map_list] submits in list order and awaits in list order, so
   results come back in input order regardless of the execution schedule.
   Callers keep experiment output byte-identical to a sequential run by
   doing all printing after the awaits.

   With [jobs = 1] (or on a machine where [Domain.recommended_domain_count]
   is 1 and the caller asked for the default) no domains are spawned and
   [submit] runs the task immediately in the calling domain — the exact
   sequential execution order. *)

type 'a state = Pending | Value of 'a | Error of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  fmutex : Mutex.t;
  fcond : Condition.t;
}

type task = Task : 'a future * (unit -> 'a) -> task

type t = {
  jobs : int;
  queue : task Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;  (* signalled on push and on shutdown *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "CAPRI_JOBS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> Domain.recommended_domain_count ()

let finish (fut : 'a future) (st : 'a state) =
  Mutex.lock fut.fmutex;
  fut.state <- st;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmutex

let run_task (Task (fut, f)) =
  let st =
    match f () with
    | v -> Value v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  finish fut st

(* Pop a task, or [None] if the queue is empty. *)
let try_pop t =
  Mutex.lock t.qmutex;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.qmutex;
  task

let worker t () =
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.shutting_down do
      Condition.wait t.qcond t.qmutex
    done;
    let task = Queue.take_opt t.queue in
    Mutex.unlock t.qmutex;
    match task with
    | Some task ->
      run_task task;
      loop ()
    | None -> if not t.shutting_down then loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      shutting_down = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.jobs

let submit t f =
  let fut = { state = Pending; fmutex = Mutex.create (); fcond = Condition.create () } in
  if t.jobs <= 1 then run_task (Task (fut, f))
  else begin
    Mutex.lock t.qmutex;
    Queue.push (Task (fut, f)) t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end;
  fut

let resolve = function
  | Value v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let peek fut =
  Mutex.lock fut.fmutex;
  let st = fut.state in
  Mutex.unlock fut.fmutex;
  st

let await t fut =
  (* Help-first: drain the queue while the future is unresolved. *)
  let rec help () =
    match peek fut with
    | (Value _ | Error _) as st -> resolve st
    | Pending -> (
      match try_pop t with
      | Some task ->
        run_task task;
        help ()
      | None ->
        (* Nothing to steal: the task is in flight on another domain. *)
        Mutex.lock fut.fmutex;
        while fut.state = Pending do
          Condition.wait fut.fcond fut.fmutex
        done;
        let st = fut.state in
        Mutex.unlock fut.fmutex;
        resolve st)
  in
  help ()

let map_list t f xs =
  let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map (fun fut -> await t fut) futures

let shutdown t =
  Mutex.lock t.qmutex;
  t.shutting_down <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  List.iter Domain.join t.workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
