(** Fixed-size Domain work pool for embarrassingly parallel fan-out.

    Tasks are closures; [jobs - 1] worker domains plus every domain blocked
    in {!await} drain a shared FIFO. {!await} is help-first (it executes
    other queued tasks while its own future is unresolved), so tasks may
    themselves submit and await subtasks without deadlock.

    The pool affects scheduling only, never results: {!map_list} returns
    results in input order, and with [jobs = 1] no domains are spawned at
    all — tasks run immediately in the calling domain, in exact sequential
    order. *)

type t
type 'a future

val default_jobs : unit -> int
(** [CAPRI_JOBS] if set (clamped to at least 1), otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; values below 1 are clamped. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. With [jobs = 1] the task runs before [submit]
    returns. *)

val await : t -> 'a future -> 'a
(** Blocks (helping with other queued tasks first) until the task
    completes; re-raises the task's exception, with its backtrace, if it
    failed. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with deterministic (input-order) results. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)
