(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator and the workload generators
    draws from an explicit [t] so that runs are reproducible bit-for-bit
    from a seed, independently of global state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

(** Bounded zipfian distribution over ranks [\[0, n)]. *)
module Zipf : sig
  type dist

  val create : n:int -> skew:float -> dist
  (** [P(rank i) ∝ 1 / (i+1)^skew]. [skew = 0] is uniform; [skew = 1] is
      the classic zipfian where rank 0 is drawn twice as often as rank 1.
      O(n) setup, O(log n) per draw. Raises [Invalid_argument] when
      [n <= 0] or [skew < 0]. *)

  val n : dist -> int
end

val zipf : t -> Zipf.dist -> int
(** Draw a rank in [\[0, n)] from the distribution. *)
