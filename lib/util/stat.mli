(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. All inputs must be positive. *)

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method.
    Raises [Invalid_argument] on the empty list. *)

val histogram :
  buckets:int -> lo:float -> hi:float -> float list ->
  (float * float * int) list
(** Fixed-width bucketing of [\[lo, hi)] into [buckets] buckets; each
    result row is [(bucket_lo, bucket_hi, count)]. Out-of-range values
    clamp into the first/last bucket. Raises [Invalid_argument] when
    [buckets <= 0] or [hi <= lo]. *)

val log2_bucket : int -> int
(** Power-of-two bucket index of a non-negative value: 0 for 0, and
    [b >= 1] for values in [(2^(b-2), 2^(b-1)]] (so upper bounds run
    1, 2, 4, 8, ...). Negative values map to bucket 0. *)

val log2_bounds : int -> int * int
(** Inclusive [(lo, hi)] value range of a {!log2_bucket} index. *)

val log2_histogram : int list -> (int * int * int) list
(** Log2 bucketing of non-negative integers: [(lo, hi, count)] rows from
    bucket 0 up to the highest non-empty bucket; [\[\]] on the empty
    list. Raises [Invalid_argument] on negative values. *)

(** Streaming accumulator for counts, averages and spread (Welford). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float

  val variance : t -> float
  (** Population variance; 0 on fewer than 2 samples. *)

  val stddev : t -> float
  (** Population standard deviation; 0 on fewer than 2 samples. *)
end
