let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          assert (x > 0.0);
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stat.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let percentile p = function
  | [] -> invalid_arg "Stat.percentile: empty list"
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
    in
    List.nth sorted (rank - 1)

(* Fixed-width bucketing over [lo, hi): values below lo clamp into the
   first bucket, values at or above hi into the last. *)
let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stat.histogram: buckets must be positive";
  if not (hi > lo) then invalid_arg "Stat.histogram: need hi > lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  List.iter
    (fun x ->
      let i =
        int_of_float (floor ((x -. lo) /. width)) |> max 0 |> min (buckets - 1)
      in
      counts.(i) <- counts.(i) + 1)
    xs;
  List.init buckets (fun i ->
      ( lo +. (width *. float_of_int i),
        lo +. (width *. float_of_int (i + 1)),
        counts.(i) ))

(* Power-of-two bucketing for non-negative integers: bucket k holds
   [2^(k-1)+1 .. 2^k] with bucket 0 reserved for 0 — i.e. upper bounds
   1, 2, 4, 8, ... as the region store-count distributions use. *)
let log2_bucket v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref 1 in
    while !x < v do
      incr b;
      x := !x * 2
    done;
    !b + 1
  end

let log2_bounds b =
  if b = 0 then (0, 0)
  else
    let hi = 1 lsl (b - 1) in
    let lo = if b = 1 then 1 else (1 lsl (b - 2)) + 1 in
    (lo, hi)

let log2_histogram xs =
  match xs with
  | [] -> []
  | _ ->
    if List.exists (fun v -> v < 0) xs then
      invalid_arg "Stat.log2_histogram: negative value";
    let top = List.fold_left (fun acc v -> max acc (log2_bucket v)) 0 xs in
    let counts = Array.make (top + 1) 0 in
    List.iter
      (fun v ->
        let b = log2_bucket v in
        counts.(b) <- counts.(b) + 1)
      xs;
    List.init (top + 1) (fun b ->
        let lo, hi = log2_bounds b in
        (lo, hi, counts.(b)))

module Acc = struct
  (* Welford's online algorithm: numerically stable streaming count /
     mean / variance without retaining the samples. *)
  type t = {
    mutable count : int;
    mutable total : float;
    mutable mean_ : float;
    mutable m2 : float;
  }

  let create () = { count = 0; total = 0.0; mean_ = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean_ in
    t.mean_ <- t.mean_ +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean_))

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
end
