type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits: Int64.to_int of a 63-bit quantity would land in
     OCaml's sign bit and come out negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (* 53 random bits, the mantissa width of a double. *)
  r /. 9007199254740992.0 *. bound

let chance t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

module Zipf = struct
  (* Bounded zipfian sampler over ranks [0, n): P(rank i) proportional to
     1 / (i+1)^skew. The cumulative table makes each draw one uniform
     float plus a binary search, so hot-key streams of millions of
     requests stay cheap after an O(n) setup. *)
  type dist = { cum : float array }

  let create ~n ~skew =
    if n <= 0 then invalid_arg "Rng.Zipf.create: n must be positive";
    if skew < 0.0 then invalid_arg "Rng.Zipf.create: skew must be >= 0";
    let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        acc := !acc +. (x /. total);
        cum.(i) <- !acc)
      w;
    (* Guard the top against rounding: the last bucket must cover 1.0. *)
    cum.(n - 1) <- 1.0;
    { cum }

  let n dist = Array.length dist.cum
end

let zipf t (dist : Zipf.dist) =
  let r = float t 1.0 in
  let cum = dist.Zipf.cum in
  (* First index with cum.(i) > r. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
