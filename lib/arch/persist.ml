module Metrics = Capri_obs.Metrics
module Obs = Capri_obs.Obs

type mode = Capri | Naive_sync | Undo_sync | Redo_nowb | Volatile

let mode_name = function
  | Capri -> "capri"
  | Naive_sync -> "naive-sync"
  | Undo_sync -> "undo-sync"
  | Redo_nowb -> "redo-nowb"
  | Volatile -> "volatile"

(* The public snapshot view; the live counters are registry cells (see
   [counters] below) so a profiled run exports them without a copy. *)
type stats = {
  mutable entries_created : int;
  mutable entries_merged : int;
  mutable commits : int;
  mutable boundaries_elided : int;
  mutable ckpt_flushes : int;
  mutable redo_writes : int;
  mutable redo_skipped_invalid : int;
  mutable redo_skipped_stale : int;
  mutable scan_invalidations : int;
  mutable window_invalidations : int;
  mutable store_stall_cycles : int;
  mutable boundary_stall_cycles : int;
  mutable nvm_line_writes : int;
  mutable nvm_writes_wb : int;  (* line writes from dirty writebacks *)
  mutable nvm_writes_redo : int;  (* line writes from phase-2 redo copies *)
  mutable nvm_writes_slot : int;  (* line writes to the checkpoint arrays *)
  mutable compactions : int;  (* journal checkpoint-cursor flips *)
  mutable journal_truncated : int;  (* journal entries compacted away *)
}

(* The live counters, one registry cell per stats field. Incrementing a
   cell costs the same field write the old mutable record cost; with the
   null registry the cells simply aren't interned anywhere. Every NVM
   line write is categorized at the single choke point ({!nvm_write}'s
   [kind]), which is what keeps the accounting invariant
   [nvm_line_writes = wb + redo + slot] structural rather than hoped-for. *)
type counters = {
  c_entries_created : Metrics.Counter.t;
  c_entries_merged : Metrics.Counter.t;
  c_commits : Metrics.Counter.t;
  c_boundaries_elided : Metrics.Counter.t;
  c_ckpt_flushes : Metrics.Counter.t;
  c_redo_writes : Metrics.Counter.t;
  c_redo_skipped_invalid : Metrics.Counter.t;
  c_redo_skipped_stale : Metrics.Counter.t;
  c_scan_invalidations : Metrics.Counter.t;
  c_window_invalidations : Metrics.Counter.t;
  c_store_stall_cycles : Metrics.Counter.t;
  c_boundary_stall_cycles : Metrics.Counter.t;
  c_nvm_line_writes : Metrics.Counter.t;
  c_nvm_writes_wb : Metrics.Counter.t;
  c_nvm_writes_redo : Metrics.Counter.t;
  c_nvm_writes_slot : Metrics.Counter.t;
  c_compactions : Metrics.Counter.t;
  c_journal_truncated : Metrics.Counter.t;
}

let mk_counters metrics ~mode =
  let labels = [ ("mode", mode_name mode) ] in
  let c name = Metrics.counter ~labels metrics ("persist_" ^ name) in
  {
    c_entries_created = c "entries_created";
    c_entries_merged = c "entries_merged";
    c_commits = c "commits";
    c_boundaries_elided = c "boundaries_elided";
    c_ckpt_flushes = c "ckpt_flushes";
    c_redo_writes = c "redo_writes";
    c_redo_skipped_invalid = c "redo_skipped_invalid";
    c_redo_skipped_stale = c "redo_skipped_stale";
    c_scan_invalidations = c "scan_invalidations";
    c_window_invalidations = c "window_invalidations";
    c_store_stall_cycles = c "store_stall_cycles";
    c_boundary_stall_cycles = c "boundary_stall_cycles";
    c_nvm_line_writes = c "nvm_line_writes";
    c_nvm_writes_wb = c "nvm_writes_wb";
    c_nvm_writes_redo = c "nvm_writes_redo";
    c_nvm_writes_slot = c "nvm_writes_slot";
    c_compactions = c "compactions";
    c_journal_truncated = c "journal_truncated";
  }

type resume =
  | Resume of { boundary : int; sp : int }
  | Done
  | Never_started

type image = {
  nvm : Memory.t;
  resume : resume array;
  slots : int array array;
  journal : int list array;
      (* per core: committed I/O journal (Section 3.3's suggested
         exactly-once treatment of outputs), in emission order *)
  acked : (int * int) list array;
      (* per core: the same journal with the cycle each output's region
         committed — what the serving layer calls an acknowledged
         request *)
  acked_base : int array;
      (* per core: the durable checkpoint cursor — how many leading
         journal entries compaction has truncated from the durable
         journal. [journal]/[acked] above remain the full ledger (the
         record of what clients were told, which the oracle checks);
         only the tail past the cursor still exists durably and is
         replayed on restart. *)
  replayed : int array;
      (* per core: redo records re-applied plus undo records rolled
         back by this recovery — the log-replay work the restart model
         charges per core *)
}

type entry = {
  line : int;
  undo : int array;
  mutable redo : int array;
  mutable mask : int;  (* bit per stored word offset within the line *)
  mutable version : int;
  mutable valid : bool;
  seq : int;  (* dynamic region sequence number, per core *)
}

type commit_info = {
  resume_boundary : int;
  sp : int;
  elide_resume : bool;
  outs : int list;  (* the region's journaled outputs, in order *)
}

let dummy_entry =
  { line = min_int; undo = [||]; redo = [||]; mask = 0; version = 0;
    valid = false; seq = min_int }

(* The proxy-path event plumbing. The original implementation kept one
   global binary heap of (time, serial, event) for both item arrivals and
   back-end space releases. Every event class is in fact monotone in
   time at its source — per-core drains happen in nondecreasing time
   order, so per-core arrivals (drain + constant latency) do too, and
   space releases are pushed at max(now, nvm_wq_free), both nondecreasing
   — so a ring queue per source replaces the heap: O(1) pushes and pops,
   no per-event tuple or sift, and "next event" is a min over ring heads.
   A global serial stamped at push keeps the heap's exact total order for
   equal-time events across sources. *)
module Ring = struct
  (* Capacity is always a power of two, so index wraparound is a bit
     mask, not a division — pushes and pops run once per proxy-path item. *)
  type 'a t = {
    mutable times : int array;
    mutable serials : int array;
    mutable vals : 'a array;
    mutable mask : int;  (* capacity - 1 *)
    mutable head : int;
    mutable len : int;
  }

  let create (dummy : 'a) =
    { times = Array.make 64 0; serials = Array.make 64 0;
      vals = Array.make 64 dummy; mask = 63; head = 0; len = 0 }

  let grow r =
    let cap = Array.length r.times in
    let nt = Array.make (2 * cap) 0
    and ns = Array.make (2 * cap) 0
    and nv = Array.make (2 * cap) r.vals.(0) in
    for i = 0 to r.len - 1 do
      let j = (r.head + i) land r.mask in
      nt.(i) <- r.times.(j);
      ns.(i) <- r.serials.(j);
      nv.(i) <- r.vals.(j)
    done;
    r.times <- nt;
    r.serials <- ns;
    r.vals <- nv;
    r.mask <- (2 * cap) - 1;
    r.head <- 0

  let[@inline] push r time serial v =
    if r.len > r.mask then grow r;
    let i = (r.head + r.len) land r.mask in
    Array.unsafe_set r.times i time;
    Array.unsafe_set r.serials i serial;
    Array.unsafe_set r.vals i v;
    r.len <- r.len + 1

  let[@inline] top_time r =
    if r.len = 0 then max_int else Array.unsafe_get r.times r.head

  let[@inline] top_serial r =
    if r.len = 0 then max_int else Array.unsafe_get r.serials r.head

  let[@inline] pop r =
    let v = Array.unsafe_get r.vals r.head in
    r.head <- (r.head + 1) land r.mask;
    r.len <- r.len - 1;
    v

  let[@inline] is_empty r = r.len = 0
end

(* Untimed FIFO on a growable circular buffer: the front proxy queue.
   Replaces [Stdlib.Queue], whose linked cells cost an allocation per
   push — this queue sees one push and one pop per proxy-path item. *)
module Fifo = struct
  type 'a t = {
    mutable vals : 'a array;
    mutable mask : int;  (* capacity - 1; capacity is a power of two *)
    mutable head : int;
    mutable len : int;
    dummy : 'a;
  }

  let create (dummy : 'a) =
    { vals = Array.make 64 dummy; mask = 63; head = 0; len = 0; dummy }

  let grow q =
    let cap = Array.length q.vals in
    let nv = Array.make (2 * cap) q.dummy in
    for i = 0 to q.len - 1 do
      nv.(i) <- q.vals.((q.head + i) land q.mask)
    done;
    q.vals <- nv;
    q.mask <- (2 * cap) - 1;
    q.head <- 0

  let[@inline] push q v =
    if q.len > q.mask then grow q;
    Array.unsafe_set q.vals ((q.head + q.len) land q.mask) v;
    q.len <- q.len + 1

  let[@inline] is_empty q = q.len = 0
  let[@inline] peek q = Array.unsafe_get q.vals q.head

  let[@inline] pop q =
    let v = Array.unsafe_get q.vals q.head in
    Array.unsafe_set q.vals q.head q.dummy;
    q.head <- (q.head + 1) land q.mask;
    q.len <- q.len - 1;
    v

  let iter f q =
    for i = 0 to q.len - 1 do
      f q.vals.((q.head + i) land q.mask)
    done

  let clear q =
    Array.fill q.vals 0 (Array.length q.vals) q.dummy;
    q.head <- 0;
    q.len <- 0
end

(* An item travelling the per-core proxy path, in FIFO order. *)
type item =
  | Data of entry
  | Ckpt_flush of { seq : int; slot : int; value : int }
  | Commit of { seq : int; info : commit_info }

let dummy_item =
  Commit { seq = min_int;
           info = { resume_boundary = -1; sp = 0; elide_resume = true;
                    outs = [] } }

(* A region as seen by the back-end proxy. *)
type back_region = {
  mutable bseq : int;
  mutable bentries : entry list;  (* reverse arrival order *)
  mutable bcount : int;
  mutable bslots : (int * int) list;
  mutable bcommit : commit_info option;
}

let dummy_back =
  { bseq = min_int; bentries = []; bcount = 0; bslots = []; bcommit = None }

type core_state = {
  id : int;
  front : item Fifo.t;
  mutable front_data : int;  (* Data items currently in the front queue *)
  (* line -> mergeable front entry, as a bounded linear map: the front
     queue holds at most [front_proxy_entries] (= 32) data entries — the
     store path stalls before exceeding it — so a cache-line scan of the
     line numbers beats hashing on every store. At most one binding per
     line; [fi_n] live. *)
  fi_lines : int array;
  fi_entries : entry array;
  mutable fi_n : int;
  staged_order : int array;  (* slots in first-store order; staged_n live *)
  mutable staged_n : int;
  staged_val : int array;  (* per slot; meaningful while staged_mark *)
  staged_mark : bool array;
  mutable out_staged : int list;  (* I/O journal: open region, reversed *)
  mutable journal : (int * int) list;
      (* committed (output, commit cycle), reversed: the cycle stamps when
         the region carrying the output reached phase 2 — the serving
         layer's ack time *)
  mutable journal_len : int;  (* List.length journal, maintained *)
  mutable journal_base : int;
      (* durable checkpoint cursor: the first [journal_base] entries (in
         emission order) have been compacted out of the durable journal —
         their regions' effects were already in NVM when they committed,
         so restart no longer replays them. The ledger above keeps them
         for the oracle. Flipping this one word IS the (failure-atomic)
         truncation; see [compact]. *)
  mutable open_seq : int;
  mutable open_entries : int;  (* data entries created in the open region *)
  mutable next_drain : int;
  arrivals : item Ring.t;  (* in flight on the proxy path, FIFO *)
  mutable back : back_region list;  (* ascending seq *)
  mutable back_spare : back_region;
      (* recycled region record: regions commit in order, so one spare
         covers the steady state and back-region allocation happens once,
         not once per dynamic region. [dummy_back] = empty. *)
  mutable back_used : int;
  mutable resume : resume;
  slot_array : int array;
  mutable halted : bool;
}

type t = {
  config : Config.t;
  mode : mode;
  cores : core_state array;
  frees : (int * int) Ring.t;  (* back-end space releases: (core, n) *)
  mutable eserial : int;  (* global event order stamp across all rings *)
  nvm : Memory.t;  (* durable contents *)
  mutable stamp_pages : int array array;
      (* per-word version stamps of stored NVM data, paged flat arrays:
         page [line lsr 8] holds 256 lines x line_words stamps ([-1] =
         never written). The age guard must match the word granularity of
         masked redo/undo application; [stamps] runs once per NVM line
         write, so it is a shift and two bounds checks, not a hash. *)
  mutable nvm_wq_free : int;  (* write-queue service timeline *)
  mutable wake : int;
      (* earliest cycle at which any internal event (heap entry or
         drainable front-queue head) is due; [advance] is a no-op before
         then. May be conservatively early — every mutation outside
         [advance] that could schedule work lowers it — but never late. *)
  mutable recent_wb : (int * int * int) list;  (* line, version, ctrl time *)
  pending : (int, int array) Hashtbl.t;
      (* line -> per-core count of not-yet-committed entries; drives the
         cross-core conflict fence (see store_conflict) *)
  c : counters;
  obs : Obs.t;
}

let create ?(obs = Obs.null) config ~mode =
  {
    config;
    mode;
    cores =
      Array.init config.Config.cores (fun id ->
          {
            id;
            front = Fifo.create dummy_item;
            front_data = 0;
            fi_lines = Array.make (config.Config.front_proxy_entries + 1) min_int;
            fi_entries =
              Array.make (config.Config.front_proxy_entries + 1) dummy_entry;
            fi_n = 0;
            staged_order = Array.make Capri_ir.Reg.count 0;
            staged_n = 0;
            staged_val = Array.make Capri_ir.Reg.count 0;
            staged_mark = Array.make Capri_ir.Reg.count false;
            out_staged = [];
            journal = [];
            journal_len = 0;
            journal_base = 0;
            open_seq = 0;
            open_entries = 0;
            next_drain = 0;
            arrivals = Ring.create dummy_item;
            back = [];
            back_spare = dummy_back;
            back_used = 0;
            resume = Never_started;
            slot_array = Array.make Capri_ir.Reg.count 0;
            halted = false;
          });
    frees = Ring.create (0, 0);
    eserial = 0;
    nvm = Memory.create ();
    stamp_pages = [||];
    nvm_wq_free = 0;
    wake = 0;
    recent_wb = [];
    pending = Hashtbl.create 256;
    c = mk_counters obs.Obs.metrics ~mode;
    obs;
  }

let debug_line =
  match Sys.getenv_opt "CAPRI_DEBUG_LINE" with
  | Some s -> (try Some (int_of_string s) with _ -> None)
  | None -> None

(* Whether any line is being debugged at all: the hot paths test this
   cheap flag before touching [dbg] — [Printf.ifprintf] still interprets
   the format string (allocating its ignore-continuations), which at
   millions of calls per run is real simulation time. *)
let dbg_on = debug_line <> None

let dbg line fmt =
  if debug_line = Some line then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let mode t = t.mode

(* Thin snapshot over the registry cells: the record the callers (tests,
   bench tables) always read, rebuilt on demand. *)
let stats t =
  let v = Metrics.Counter.value in
  {
    entries_created = v t.c.c_entries_created;
    entries_merged = v t.c.c_entries_merged;
    commits = v t.c.c_commits;
    boundaries_elided = v t.c.c_boundaries_elided;
    ckpt_flushes = v t.c.c_ckpt_flushes;
    redo_writes = v t.c.c_redo_writes;
    redo_skipped_invalid = v t.c.c_redo_skipped_invalid;
    redo_skipped_stale = v t.c.c_redo_skipped_stale;
    scan_invalidations = v t.c.c_scan_invalidations;
    window_invalidations = v t.c.c_window_invalidations;
    store_stall_cycles = v t.c.c_store_stall_cycles;
    boundary_stall_cycles = v t.c.c_boundary_stall_cycles;
    nvm_line_writes = v t.c.c_nvm_line_writes;
    nvm_writes_wb = v t.c.c_nvm_writes_wb;
    nvm_writes_redo = v t.c.c_nvm_writes_redo;
    nvm_writes_slot = v t.c.c_nvm_writes_slot;
    compactions = v t.c.c_compactions;
    journal_truncated = v t.c.c_journal_truncated;
  }

let init_slots t ~core ~slots ~resume_boundary ~sp =
  let cs = t.cores.(core) in
  Array.blit slots 0 cs.slot_array 0 (Array.length cs.slot_array);
  match resume_boundary with
  | Some boundary -> cs.resume <- Resume { boundary; sp }
  | None -> cs.resume <- Never_started

let seed_core t ~core ~slots ~resume =
  let cs = t.cores.(core) in
  Array.blit slots 0 cs.slot_array 0 (Array.length cs.slot_array);
  cs.resume <- resume;
  (match resume with Done -> cs.halted <- true | Resume _ | Never_started -> ())

let stamp_page t line =
  let p = line lsr 8 in
  let np = Array.length t.stamp_pages in
  if p >= np then begin
    let grown = Array.make (max (p + 1) (2 * np)) [||] in
    Array.blit t.stamp_pages 0 grown 0 np;
    t.stamp_pages <- grown
  end;
  let pg = Array.unsafe_get t.stamp_pages p in
  if pg != [||] then pg
  else begin
    let pg = Array.make (256 * Config.line_words) (-1) in
    t.stamp_pages.(p) <- pg;
    pg
  end

(* Word-granular aged write: each masked word lands only if its data is
   at least as new as what that word already holds. [kind] attributes the
   line write to one of the three traffic categories at the single choke
   point, so nvm_line_writes = wb + redo + slot holds by construction. *)
let nvm_write ?(mask = 0xFF) t ~kind ~line ~data ~version =
  let stamps = stamp_page t line in
  let base = (line land 255) * Config.line_words in
  Metrics.Counter.inc t.c.c_nvm_line_writes;
  Metrics.Counter.inc
    (match kind with
    | `Wb -> t.c.c_nvm_writes_wb
    | `Redo -> t.c.c_nvm_writes_redo
    | `Slot -> t.c.c_nvm_writes_slot);
  let write_mask = ref 0 in
  for o = 0 to Config.line_words - 1 do
    if mask land (1 lsl o) <> 0 && version >= stamps.(base + o) then begin
      write_mask := !write_mask lor (1 lsl o);
      stamps.(base + o) <- version
    end
  done;
  if dbg_on then
    dbg line "nvm_write line=%d mask=%x wrote=%x v=%d data2=%d\n" line mask
      !write_mask version data.(2);
  if !write_mask <> 0 then begin
    Memory.write_line_masked t.nvm line data !write_mask;
    true
  end
  else begin
    Metrics.Counter.inc t.c.c_redo_skipped_stale;
    false
  end

let nvm_line t line = Memory.line_snapshot t.nvm line

(* Loader/restart path: install a line of the initial (or recovered)
   durable image directly, regardless of mode. Routing this through
   {!on_writeback} would silently drop it in [Redo_nowb] mode — whose
   writeback handler discards dirty lines by design — leaving the data
   segment non-durable before the first committed region (lost by a
   crash at instruction 0; found by the fuzzer). *)
let install_line t ~line ~data ~version =
  ignore (nvm_write t ~kind:`Wb ~line ~data ~version)

(* ---------------- cross-core conflict fence ---------------- *)

(* Per line and core: how many uncommitted entries touch it, and the OR
   of their word masks. The mask clears when the count drops to zero —
   slightly conservative when several of a core's regions overlap on a
   line, never unsound. *)
let pending_counts t line =
  match Hashtbl.find_opt t.pending line with
  | Some a -> a
  | None ->
    let a = Array.make (2 * t.config.Config.cores) 0 in
    Hashtbl.replace t.pending line a;
    a

(* The pending table's only reader is [store_conflict], which is a no-op
   unless the fence is configured on — so with the fence off (the paper's
   hardware model, and every timing experiment) the per-store bookkeeping
   is skipped entirely. *)
let pending_inc t ~core ~line ~mask =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.(2 * core) <- a.(2 * core) + 1;
    a.((2 * core) + 1) <- a.((2 * core) + 1) lor mask
  end

let pending_add_mask t ~core ~line ~mask =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.((2 * core) + 1) <- a.((2 * core) + 1) lor mask
  end

let pending_dec t ~core ~line =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.(2 * core) <- max 0 (a.(2 * core) - 1);
    if a.(2 * core) = 0 then a.((2 * core) + 1) <- 0
  end

(* Front-index linear map (see [core_state.fi_lines]). [fi_find] returns
   [dummy_entry] on miss — its [seq] is [min_int], which no open region
   ever has, so the merge guard rejects it without a branch on "found". *)
let rec fi_scan cs line i =
  if i >= cs.fi_n then -1
  else if Array.unsafe_get cs.fi_lines i = line then i
  else fi_scan cs line (i + 1)

let[@inline] fi_find cs line =
  let i = fi_scan cs line 0 in
  if i < 0 then dummy_entry else Array.unsafe_get cs.fi_entries i

(* Bind [line -> e], replacing any existing binding for the line (the
   replaced entry is necessarily a stale one from an earlier region). *)
let fi_bind cs line e =
  let i = fi_scan cs line 0 in
  if i >= 0 then cs.fi_entries.(i) <- e
  else begin
    cs.fi_lines.(cs.fi_n) <- line;
    cs.fi_entries.(cs.fi_n) <- e;
    cs.fi_n <- cs.fi_n + 1
  end

(* Remove the binding for [e.line] iff it is [e] itself. *)
let fi_unbind cs e =
  let i = fi_scan cs e.line 0 in
  if i >= 0 && Array.unsafe_get cs.fi_entries i == e then begin
    cs.fi_n <- cs.fi_n - 1;
    cs.fi_lines.(i) <- cs.fi_lines.(cs.fi_n);
    cs.fi_entries.(i) <- cs.fi_entries.(cs.fi_n);
    cs.fi_lines.(cs.fi_n) <- min_int;
    cs.fi_entries.(cs.fi_n) <- dummy_entry
  end

(* ---------------- back-end ---------------- *)

let back_region_for cs seq =
  (* FIFO delivery means the region being delivered to is almost always
     the head of [back] (regions complete in order); the scan and the
     append only run on region creation and the rare multi-region case. *)
  match cs.back with
  | r :: _ when r.bseq = seq -> r
  | l ->
    let rec find = function
      | [] ->
        let r =
          if cs.back_spare != dummy_back then begin
            let r = cs.back_spare in
            cs.back_spare <- dummy_back;
            r.bseq <- seq;
            r
          end
          else
            { bseq = seq; bentries = []; bcount = 0; bslots = [];
              bcommit = None }
        in
        cs.back <- cs.back @ [ r ];
        r
      | r :: tl -> if r.bseq = seq then r else find tl
    in
    find l

let prune_window t now =
  match t.recent_wb with
  | [] -> ()  (* the common case outside writeback storms: no filter pass *)
  | _ ->
    let w = t.config.Config.monitor_window in
    t.recent_wb <- List.filter (fun (_, _, tw) -> tw + w >= now) t.recent_wb

(* [bentries]/[bslots] are in reverse arrival order; recursing into the
   tail first processes oldest-first without materializing [List.rev].
   Depth is bounded by back_proxy_entries / the per-region slot count.
   Top-level (not local to [do_commit]) so no closures are built per
   commit. pending_dec only touches the conflict table and nvm_write
   never reads it, so fusing the two passes per entry is observationally
   identical to the original two-pass loop. Returns the number of line
   writes issued. *)
let rec commit_entries t cs now = function
  | [] -> 0
  | e :: older ->
    let n = commit_entries t cs now older in
    pending_dec t ~core:cs.id ~line:e.line;
    if not e.valid then begin
      Metrics.Counter.inc t.c.c_redo_skipped_invalid;
      n
    end
    else begin
      t.nvm_wq_free <-
        max t.nvm_wq_free now + t.config.Config.nvm_write_service;
      if nvm_write ~mask:e.mask t ~kind:`Redo ~line:e.line ~data:e.redo
           ~version:e.version
      then Metrics.Counter.inc t.c.c_redo_writes;
      n + 1
    end

let rec apply_slots cs = function
  | [] -> ()
  | (slot, value) :: older ->
    apply_slots cs older;
    cs.slot_array.(slot) <- value

(* Drop [region] from a back list; it is almost always the head. *)
let rec remove_back region = function
  | [] -> []
  | r :: tl -> if r == region then tl else r :: remove_back region tl

(* Oracle-sensitivity fault injection for compaction (see [compact]):
   when armed, the physical journal reclaim runs *before* the checkpoint
   cursor flips — the torn ordering the protocol exists to rule out. The
   truncated entries vanish from the ledger while the cursor still
   points below them, so the recovered acked streams develop a hole that
   the Sla prefix oracle must report. Test-only; tests arm and reset. *)
let fault_tear_compaction = Atomic.make false

let rec list_drop n l =
  if n <= 0 then l
  else match l with [] -> [] | _ :: tl -> list_drop (n - 1) tl

(* Journal/proxy-log compaction. A journal entry's only post-crash role
   is re-acking (exactly-once output): its region's data effects were
   already copied to NVM by phase 2 *before* the entry was appended (see
   [do_commit]: [commit_entries] runs first). So once the durable tail
   reaches [compact_interval] entries, the whole tail can be truncated
   by durably advancing the checkpoint cursor one word — clients that
   heard those acks keep them (the ledger is their record); restart
   simply stops re-serving them. The flip is failure-atomic because the
   cursor is a single word and physical reclaim is deferred until after
   it persists; a crash on either side sees a consistent journal. *)
let compact t cs =
  let interval = t.config.Config.compact_interval in
  if interval > 0 && cs.journal_len - cs.journal_base >= interval then begin
    let truncated = cs.journal_len - cs.journal_base in
    if Atomic.get fault_tear_compaction then begin
      (* reclaim before the cursor flip, then crash-stop the flip: the
         entries are simply gone from every later view *)
      cs.journal <- list_drop truncated cs.journal;
      cs.journal_len <- cs.journal_base
    end
    else cs.journal_base <- cs.journal_len;
    Metrics.Counter.inc t.c.c_compactions;
    Metrics.Counter.add t.c.c_journal_truncated truncated
  end

(* Phase 2: copy redo data of valid entries, apply checkpoint slots, update
   the resume record, and schedule the space release. *)
let do_commit t cs region info now =
  (match debug_line with
   | Some l when List.exists (fun e -> e.line = l) region.bentries ->
     Printf.eprintf "commit seq=%d resume=%d now=%d entries=%d\n" region.bseq
       info.resume_boundary now region.bcount
   | _ -> ());
  Metrics.Counter.inc t.c.c_commits;
  let commit_lines = ref (commit_entries t cs now region.bentries) in
  apply_slots cs region.bslots;
  (* Slot stores are adjacent 8-byte words of the per-core checkpoint
     array: they coalesce into whole-line writes (at most 4 lines for 32
     registers). They bypass the stamp machinery (the slot arrays live
     outside data memory) but still count as NVM line traffic. *)
  let slot_lines = (List.length region.bslots + 7) / 8 in
  Metrics.Counter.add t.c.c_nvm_writes_slot slot_lines;
  Metrics.Counter.add t.c.c_nvm_line_writes slot_lines;
  commit_lines := !commit_lines + slot_lines;
  for _ = 1 to slot_lines do
    t.nvm_wq_free <- max t.nvm_wq_free now + t.config.Config.nvm_write_service
  done;
  Capri_obs.Profiler.on_commit t.obs.Obs.regions ~core:cs.id ~seq:region.bseq
    ~cycle:now ~nvm_lines:!commit_lines;
  if Capri_obs.Tracer.enabled t.obs.Obs.tracer then
    Capri_obs.Tracer.instant t.obs.Obs.tracer ~track:Capri_obs.Tracer.Proxy
      ~name:"commit" ~ts:now
      ~args:
        [
          ("core", string_of_int cs.id);
          ("seq", string_of_int region.bseq);
          ("nvm_lines", string_of_int !commit_lines);
        ];
  (match info.outs with
   | [] -> ()
   | outs ->
     cs.journal <- List.rev_append (List.map (fun v -> (v, now)) outs) cs.journal;
     cs.journal_len <- cs.journal_len + List.length outs;
     compact t cs);
  if not info.elide_resume then
    cs.resume <-
      (if info.resume_boundary >= 0 then
         Resume { boundary = info.resume_boundary; sp = info.sp }
       else Done);
  if region.bcount > 0 then begin
    t.eserial <- t.eserial + 1;
    Ring.push t.frees (max now t.nvm_wq_free) t.eserial (cs.id, region.bcount)
  end;
  cs.back <- remove_back region cs.back;
  (* Recycle the record for the next region on this core. *)
  if cs.back_spare == dummy_back then begin
    region.bseq <- min_int;
    region.bentries <- [];
    region.bcount <- 0;
    region.bslots <- [];
    region.bcommit <- None;
    cs.back_spare <- region
  end

let deliver t core item now =
  let cs = t.cores.(core) in
  match item with
  | Data e ->
    (* Monitoring window: a writeback that already carried data at least
       this new (same line) invalidates the arriving redo. *)
    prune_window t now;
    if
      (match t.recent_wb with
       | [] -> false  (* no closure built on the windowless fast path *)
       | l ->
         List.exists (fun (line, v, _) -> line = e.line && v >= e.version) l)
    then begin
      if e.valid then begin
        e.valid <- false;
        Metrics.Counter.inc t.c.c_window_invalidations
      end
    end;
    let r = back_region_for cs e.seq in
    r.bentries <- e :: r.bentries;
    r.bcount <- r.bcount + 1;
    (match r.bcommit with
     | Some info -> do_commit t cs r info now  (* late entry: can't happen
                                                  with FIFO, kept for safety *)
     | None -> ())
  | Ckpt_flush { seq; slot; value } ->
    let r = back_region_for cs seq in
    r.bslots <- (slot, value) :: r.bslots
  | Commit { seq; info } ->
    let r = back_region_for cs seq in
    r.bcommit <- Some info;
    do_commit t cs r info now

(* ---------------- draining ---------------- *)

let[@inline] head_drainable t cs =
  (not (Fifo.is_empty cs.front))
  &&
  match Fifo.peek cs.front with
  | Data _ -> cs.back_used < t.config.Config.back_proxy_entries
  | Ckpt_flush _ | Commit _ -> true

let drain_one t cs now =
  let item = Fifo.pop cs.front in
  (match item with
   | Data e ->
     cs.front_data <- cs.front_data - 1;
     cs.back_used <- cs.back_used + 1;
     (* The entry leaves the front-end: no longer mergeable. *)
     fi_unbind cs e
   | Ckpt_flush _ | Commit _ -> ());
  t.eserial <- t.eserial + 1;
  Ring.push cs.arrivals (now + t.config.Config.proxy_path_latency) t.eserial
    item;
  (* Occupancy is proportional to payload: a data entry carries two cache
     lines (undo + redo), a checkpoint flush or commit marker a dozen
     bytes. *)
  let gap =
    match item with
    | Data _ -> t.config.Config.proxy_path_gap
    | Ckpt_flush _ | Commit _ -> max 1 (t.config.Config.proxy_path_gap / 4)
  in
  cs.next_drain <- now + gap

let advance_loop t ~cycle =
  (* Interleave heap events and per-core drains in time order. Runs once
     per proxy-path item systemwide, so it is written allocation-free:
     [max_int] for "nothing pending", heap wins time ties, first core
     wins drain-time ties (matching the heap's serial order and the
     original fold's first-minimal choice). *)
  (* Written as closure-free tail recursion with immediate-int
     accumulators: this loop runs once per proxy-path event systemwide
     (millions of iterations per run), and refs or [Array.iter] closures
     allocated inside it were the single largest allocation source in the
     whole simulator. *)
  let ncores = Array.length t.cores in
  (* Earliest event ring by (time, serial): returns -1 for the free ring,
     the core id for an arrival ring — the exact pop order of the old
     global heap, since serials are stamped at push in chronological
     order across all rings. *)
  let rec best_event i bt bs bi =
    if i >= ncores then bi
    else begin
      let a = (Array.unsafe_get t.cores i).arrivals in
      let ti = Ring.top_time a in
      if ti < bt || (ti = bt && Ring.top_serial a < bs) then
        best_event (i + 1) ti (Ring.top_serial a) i
      else best_event (i + 1) bt bs bi
    end
  in
  (* Earliest drainable core by due time; first core wins ties (matching
     the original fold's first-minimal choice). *)
  let rec best_drain i bt bi =
    if i >= ncores then bi
    else begin
      let cs = Array.unsafe_get t.cores i in
      if head_drainable t cs then begin
        let d = if cs.next_drain > 0 then cs.next_drain else 0 in
        if d < bt then best_drain (i + 1) d i else best_drain (i + 1) bt bi
      end
      else best_drain (i + 1) bt bi
    end
  in
  let rec go () =
    let bi = best_event 0 (Ring.top_time t.frees) (Ring.top_serial t.frees) (-1) in
    let bt =
      if bi < 0 then Ring.top_time t.frees
      else Ring.top_time t.cores.(bi).arrivals
    in
    let di = best_drain 0 max_int (-1) in
    let td =
      if di < 0 then max_int
      else begin
        let d = t.cores.(di).next_drain in
        if d > 0 then d else 0
      end
    in
    if bt <= cycle && bt <= td then begin
      (if bi < 0 then begin
         let core, n = Ring.pop t.frees in
         t.cores.(core).back_used <- t.cores.(core).back_used - n
       end
       else deliver t bi (Ring.pop t.cores.(bi).arrivals) bt);
      go ()
    end
    else if td <= cycle then begin
      drain_one t t.cores.(di) td;
      go ()
    end
    else
      (* The stopping iteration has the exact next internal event time in
         hand — record it so [advance] need not rescan. *)
      t.wake <- if bt < td then bt else td
  in
  go ()

(* Recompute the exact next internal event time. Identical to the
   next-time scan in [stall_until]: the minimum over the heap's head and
   every core whose front-queue head is currently drainable. *)
let rec next_event_from t i m =
  if i >= Array.length t.cores then m
  else begin
    let ti = Ring.top_time (Array.unsafe_get t.cores i).arrivals in
    next_event_from t (i + 1) (if ti < m then ti else m)
  end

let next_event_time t = next_event_from t 0 (Ring.top_time t.frees)

let rec next_drain_from t i m =
  if i >= Array.length t.cores then m
  else begin
    let cs = Array.unsafe_get t.cores i in
    let m =
      if head_drainable t cs then min m (max cs.next_drain 0) else m
    in
    next_drain_from t (i + 1) m
  end

let[@inline] advance t ~cycle =
  (* [advance_loop]'s stopping iteration stores the next due time into
     [t.wake] itself, so no separate rescan is needed here. *)
  if cycle >= t.wake then advance_loop t ~cycle

(* Pump time forward until [cond] holds; returns the cycle at which it
   does. Used to model core stalls on full buffers. *)
let stall_until t ~cycle cond =
  let now = ref cycle in
  advance t ~cycle:!now;
  let guard = ref 0 in
  while not (cond ()) do
    incr guard;
    if !guard > 100_000_000 then failwith "Persist: stall does not resolve";
    let next_time = next_drain_from t 0 (next_event_time t) in
    if next_time = max_int then
      failwith "Persist: stalled with no pending events"
    else begin
      now := max !now next_time;
      advance t ~cycle:!now
    end
  done;
  !now

let fence_active t =
  t.config.Config.conflict_fence && t.mode <> Volatile

let store_conflict t ~core ~cycle ~line ~mask =
  match t.mode with
  | Volatile -> false
  | _ when not t.config.Config.conflict_fence -> false
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    advance t ~cycle;
    (match Hashtbl.find_opt t.pending line with
     | None -> false
     | Some a ->
       let conflict = ref false in
       for c = 0 to t.config.Config.cores - 1 do
         if c <> core && a.(2 * c) > 0 && a.((2 * c) + 1) land mask <> 0 then
           conflict := true
       done;
       !conflict)

(* ---------------- core-facing operations ---------------- *)

let on_store t ~core ~cycle ~line ~mask ~undo ~redo ~version =
  match t.mode with
  | Volatile -> 0
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    (* Merge with a front-resident entry of the same open region. *)
    (match fi_find cs line with
     | e when e.seq = cs.open_seq ->
       e.redo <- redo;
       e.mask <- e.mask lor mask;
       e.version <- version;
       if dbg_on then
         dbg line "merge line=%d seq=%d mask=%x v=%d redo2=%d\n" line e.seq
           e.mask version redo.(2);
       pending_add_mask t ~core ~line ~mask;
       Metrics.Counter.inc t.c.c_entries_merged;
       0
     | _ ->
       let resolved =
         if cs.front_data >= t.config.Config.front_proxy_entries then begin
           let target = cycle in
           let finish =
             stall_until t ~cycle (fun () ->
                 cs.front_data < t.config.Config.front_proxy_entries)
           in
           let stall = max 0 (finish - target) in
           Metrics.Counter.add t.c.c_store_stall_cycles stall;
           stall
         end
         else 0
       in
       let e =
         { line; undo; redo; mask; version; valid = true; seq = cs.open_seq }
       in
       if dbg_on then
         dbg line "entry line=%d seq=%d mask=%x v=%d redo2=%d undo2=%d\n" line
           e.seq mask version redo.(2) undo.(2);
       pending_inc t ~core:cs.id ~line ~mask;
       Fifo.push cs.front (Data e);
       cs.front_data <- cs.front_data + 1;
       cs.open_entries <- cs.open_entries + 1;
       fi_bind cs line e;
       (* The transfer to the back-end cannot begin in the creation
          cycle, so a same-cycle second store to the line still merges. *)
       cs.next_drain <- max cs.next_drain (cycle + 1);
       t.wake <- min t.wake (max cs.next_drain 0);
       Metrics.Counter.inc t.c.c_entries_created;
       resolved)

(* Same phase-1 protocol as {!on_store}, but fed a single word delta
   instead of caller-built line snapshots. The proxy entry itself is the
   accumulation buffer: a merge is one in-place word write (the entry's
   unmasked words are never observed — recovery and phase 2 both apply
   [mask] — so refreshing them would be wasted work), and only entry
   creation snapshots the line. [memory] is the architectural memory
   *after* the store, so the undo image is the snapshot with the stored
   word rolled back to [old]. *)
let on_store_word t ~core ~cycle ~line ~mask ~word ~value ~old ~version
    ~memory =
  match t.mode with
  | Volatile -> 0
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    (match fi_find cs line with
     | e when e.seq = cs.open_seq ->
       e.redo.(word) <- value;
       e.mask <- e.mask lor mask;
       e.version <- version;
       if dbg_on then
         dbg line "merge line=%d seq=%d mask=%x v=%d redo2=%d\n" line e.seq
           e.mask version e.redo.(2);
       pending_add_mask t ~core ~line ~mask;
       Metrics.Counter.inc t.c.c_entries_merged;
       0
     | _ ->
       let resolved =
         if cs.front_data >= t.config.Config.front_proxy_entries then begin
           let target = cycle in
           let finish =
             stall_until t ~cycle (fun () ->
                 cs.front_data < t.config.Config.front_proxy_entries)
           in
           let stall = max 0 (finish - target) in
           Metrics.Counter.add t.c.c_store_stall_cycles stall;
           stall
         end
         else 0
       in
       let redo = Memory.line_snapshot memory line in
       let undo = Array.copy redo in
       undo.(word) <- old;
       let e =
         { line; undo; redo; mask; version; valid = true; seq = cs.open_seq }
       in
       if dbg_on then
         dbg line "entry line=%d seq=%d mask=%x v=%d redo2=%d undo2=%d\n" line
           e.seq mask version redo.(2) undo.(2);
       pending_inc t ~core:cs.id ~line ~mask;
       Fifo.push cs.front (Data e);
       cs.front_data <- cs.front_data + 1;
       cs.open_entries <- cs.open_entries + 1;
       fi_bind cs line e;
       cs.next_drain <- max cs.next_drain (cycle + 1);
       t.wake <- min t.wake (max cs.next_drain 0);
       Metrics.Counter.inc t.c.c_entries_created;
       resolved)

let on_ckpt t ~core ~slot ~value =
  match t.mode with
  | Volatile -> ()
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    let cs = t.cores.(core) in
    if not cs.staged_mark.(slot) then begin
      cs.staged_mark.(slot) <- true;
      cs.staged_order.(cs.staged_n) <- slot;
      cs.staged_n <- cs.staged_n + 1
    end;
    cs.staged_val.(slot) <- value

(* Section 3.3's open I/O problem, handled as the paper suggests: outputs
   stage durably with their region and become externally visible only at
   the region's commit, so an interrupted region's re-execution cannot
   double-emit. *)
let on_out t ~core ~value =
  let cs = t.cores.(core) in
  cs.out_staged <- value :: cs.out_staged

let journal t ~core = List.rev_map fst t.cores.(core).journal

let journal_entries t ~core = List.rev t.cores.(core).journal

let journal_base t ~core = t.cores.(core).journal_base

let journal_tail t ~core =
  let cs = t.cores.(core) in
  cs.journal_len - cs.journal_base

let seed_journal t ~core ?(base = 0) ~outs () =
  (* Entries carried over a restart keep no timestamp: they were acked in
     a previous power cycle, before this engine's clock existed. [base]
     carries the checkpoint cursor across the restart: everything below
     it is already compacted out of the durable journal. *)
  let cs = t.cores.(core) in
  cs.journal <- List.rev_map (fun v -> (v, 0)) outs;
  cs.journal_len <- List.length outs;
  cs.journal_base <- max 0 (min base cs.journal_len)

let flush_region t cs ~boundary ~sp =
  (* Close the open region: flush staged checkpoints (final values),
     journaled outputs and the commit marker, unless the region produced
     nothing (elided boundary entry, Section 5.2.1 optimization). *)
  let outs = List.rev cs.out_staged in
  let has_work = cs.open_entries > 0 || cs.staged_n > 0 || outs <> [] in
  if has_work then begin
    for i = 0 to cs.staged_n - 1 do
      let slot = cs.staged_order.(i) in
      Metrics.Counter.inc t.c.c_ckpt_flushes;
      Fifo.push cs.front
        (Ckpt_flush { seq = cs.open_seq; slot; value = cs.staged_val.(slot) })
    done;
    Fifo.push cs.front
      (Commit
         { seq = cs.open_seq;
           info = { resume_boundary = boundary; sp; elide_resume = false;
                    outs } });
    t.wake <- min t.wake (max cs.next_drain 0)
  end
  else Metrics.Counter.inc t.c.c_boundaries_elided;
  cs.out_staged <- [];
  for i = 0 to cs.staged_n - 1 do
    cs.staged_mark.(cs.staged_order.(i)) <- false
  done;
  cs.staged_n <- 0;
  (* Entries of the finished region still in the front-end must not merge
     with the next region's stores: the seq guard on the merge path makes
     the leftover index entries inert (and cheaper than clearing the
     map once per region), and draining removes them. *)
  cs.open_seq <- cs.open_seq + 1;
  cs.open_entries <- 0

let fully_drained cs = Fifo.is_empty cs.front && cs.back = [] && cs.back_used = 0

let on_boundary t ~core ~cycle ~boundary ~sp =
  match t.mode with
  | Volatile -> 0
  | Capri | Redo_nowb ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary ~sp;
    0
  | Naive_sync | Undo_sync ->
    (* Synchronous region persistence: wait until everything this core has
       produced, including this region, is durable. *)
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary ~sp;
    let finish = stall_until t ~cycle (fun () -> fully_drained cs) in
    let stall = max 0 (finish - cycle) in
    Metrics.Counter.add t.c.c_boundary_stall_cycles stall;
    stall

let on_writeback t ~cycle ~line ~data ~version =
  match t.mode with
  | Volatile -> ignore (nvm_write t ~kind:`Wb ~line ~data ~version)
  | Redo_nowb ->
    (* Dirty lines are dropped: only the redo log updates NVM. *)
    ()
  | Capri | Naive_sync | Undo_sync ->
    advance t ~cycle;
    if dbg_on then
      dbg line "writeback line=%d v=%d data2=%d cyc=%d\n" line version data.(2)
        cycle;
    ignore (nvm_write t ~kind:`Wb ~line ~data ~version);
    t.nvm_wq_free <- max t.nvm_wq_free cycle + t.config.Config.nvm_write_service;
    (* Scan the back-end proxies: invalidate overtaken redo entries. *)
    Array.iter
      (fun cs ->
        List.iter
          (fun r ->
            List.iter
              (fun e ->
                if e.line = line && e.valid && e.version <= version then begin
                  e.valid <- false;
                  Metrics.Counter.inc t.c.c_scan_invalidations
                end)
              r.bentries)
          cs.back)
      t.cores;
    (* Arm the monitoring window for in-flight entries. *)
    prune_window t cycle;
    t.recent_wb <- (line, version, cycle) :: t.recent_wb

let on_halt t ~core ~cycle =
  match t.mode with
  | Volatile -> 0
  | Capri | Redo_nowb ->
    (* Asynchronous region persistence extends to program exit: the final
       region's commit drains in the background (its marker flips the
       resume record to Done when it lands; a crash in between replays the
       idempotent tail). The paper's measurements are steady-state
       execution windows and likewise exclude exit-drain time. *)
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary:(-1) ~sp:0;
    cs.halted <- true;
    0
  | Naive_sync | Undo_sync ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary:(-1) ~sp:0;
    let finish = stall_until t ~cycle (fun () -> fully_drained cs) in
    cs.halted <- true;
    cs.resume <- Done;
    max 0 (finish - cycle)

let load_extra_latency t (level : Hierarchy.level) =
  match (t.mode, level) with
  | Redo_nowb, (Hierarchy.Dram | Hierarchy.Nvm) ->
    t.config.Config.proxy_path_latency / 2
  | Redo_nowb, (Hierarchy.L1 | Hierarchy.L2) -> 0
  | (Capri | Naive_sync | Undo_sync | Volatile), _ -> 0

let writebacks_reach_nvm t =
  match t.mode with
  | Redo_nowb -> false
  | Capri | Naive_sync | Undo_sync | Volatile -> true

(* ---------------- crash and recovery ---------------- *)

(* Oracle-sensitivity fault injection: when armed, recovery silently
   skips rolling back interrupted regions, exactly the bug class the
   crash-consistency fuzzer's oracle exists to catch. Atomic so fuzz
   campaigns running under a domain pool read a coherent value. Test-only:
   nothing in the library ever sets it. *)
let fault_drop_undo = Atomic.make false

(* Per-core recovery work, split plan/apply so the planning half can fan
   out over a domain pool. A core's plan is a pure function of its own
   back-end state (sorting the surviving regions, separating committed
   regions' valid redo entries and slot updates from the interrupted
   region's undo entries) — exactly the per-core log scan a parallel
   restart runs on every core at once. Application — the actual NVM
   writes, stamp bumps, journal appends and resume flips — stays in
   fixed core order: stamp pages and counters are shared across cores,
   and a fixed order is what makes the recovered image byte-identical at
   any [jobs] count (the modeled restart time still charges the per-core
   maximum, not the sum — see the serving layer). *)
type rec_step =
  | P_commit of {
      redo : entry list;  (* valid entries, oldest first *)
      slots : (int * int) list;  (* oldest first *)
      info : commit_info;
    }
  | P_undo of entry list  (* newest first *)

let plan_core cs =
  let regions = List.sort (fun a b -> Int.compare a.bseq b.bseq) cs.back in
  let drop_undo = Atomic.get fault_drop_undo in
  let steps =
    List.map
      (fun r ->
        match r.bcommit with
        | Some info ->
          P_commit
            {
              redo = List.filter (fun e -> e.valid) (List.rev r.bentries);
              slots = List.rev r.bslots;
              info;
            }
        | None -> P_undo (if drop_undo then [] else r.bentries))
      regions
  in
  let replayed =
    List.fold_left
      (fun acc s ->
        acc
        +
        match s with
        | P_commit { redo; _ } -> List.length redo
        | P_undo undo -> List.length undo)
      0 steps
  in
  (steps, replayed)

let crash_recover ?(jobs = 1) t ~cycle =
  advance t ~cycle;
  (* Battery drain: everything still in the front-end or on the path
     reaches the back-end structures. [bentries]/[bslots] are reverse
     arrival order (each drained item is prepended), so older items must
     drain first: the in-flight ring holds items that already left the
     front queue, i.e. every in-flight item predates everything still in
     the front. Draining front-first would interleave one region's
     entries out of order when it spans both queues — rolled back, two
     stores to the same word would then restore the intermediate value
     instead of the oldest undo image (a lock word acquired and released
     inside one open region would revert to "held", orphaning the lock
     across recovery). *)
  Array.iter
    (fun cs ->
      while not (Ring.is_empty cs.arrivals) do
        match Ring.pop cs.arrivals with
        | Data e ->
          let r = back_region_for cs e.seq in
          r.bentries <- e :: r.bentries;
          r.bcount <- r.bcount + 1
        | Ckpt_flush { seq; slot; value } ->
          let r = back_region_for cs seq in
          r.bslots <- (slot, value) :: r.bslots
        | Commit { seq; info } ->
          let r = back_region_for cs seq in
          r.bcommit <- Some info
      done)
    t.cores;
  Array.iter
    (fun cs ->
      Fifo.iter
        (fun item ->
          match item with
          | Data e ->
            let r = back_region_for cs e.seq in
            r.bentries <- e :: r.bentries;
            r.bcount <- r.bcount + 1
          | Ckpt_flush { seq; slot; value } ->
            let r = back_region_for cs seq in
            r.bslots <- (slot, value) :: r.bslots
          | Commit { seq; info } ->
            let r = back_region_for cs seq in
            r.bcommit <- Some info)
        cs.front;
      Fifo.clear cs.front)
    t.cores;
  while not (Ring.is_empty t.frees) do
    ignore (Ring.pop t.frees)
  done;
  (* Section 5.4: redo committed regions in order, then undo the (at most
     one per core) interrupted region. Planning fans out across cores —
     every core scans its own surviving log independently — and the
     plans are then applied in fixed core order (see [plan_core]). *)
  let cores_list = Array.to_list t.cores in
  let plans =
    Array.of_list
      (if jobs <= 1 then List.map plan_core cores_list
       else
         Capri_util.Pool.with_pool ~jobs (fun pool ->
             Capri_util.Pool.map_list pool plan_core cores_list))
  in
  Array.iteri
    (fun i cs ->
      let steps, _ = plans.(i) in
      List.iter
        (function
          | P_commit { redo; slots; info } ->
            List.iter
              (fun e ->
                dbg e.line "recover-redo line=%d seq=%d v=%d redo2=%d\n" e.line
                  e.seq e.version e.redo.(2);
                ignore
                  (nvm_write ~mask:e.mask t ~kind:`Redo ~line:e.line
                     ~data:e.redo ~version:e.version))
              redo;
            List.iter (fun (slot, value) -> cs.slot_array.(slot) <- value) slots;
            (* Committed journaled outputs survive the crash too; their
               regions reach phase 2 during recovery, at the crash
               cycle. (No compaction here: compaction is a steady-state
               activity, not something a restart interleaves with its
               own replay.) *)
            (match info.outs with
             | [] -> ()
             | outs ->
               cs.journal <-
                 List.rev_append (List.map (fun v -> (v, cycle)) outs) cs.journal;
               cs.journal_len <- cs.journal_len + List.length outs);
            if not info.elide_resume then
              if info.resume_boundary >= 0 then
                cs.resume <-
                  Resume { boundary = info.resume_boundary; sp = info.sp }
              else cs.resume <- Done
          | P_undo entries ->
            (* Interrupted region: roll back with undo data, newest entry
               first. Staged slots of this region are discarded. *)
            List.iter
              (fun e ->
                dbg e.line "undo line=%d seq=%d mask=%x v=%d undo2=%d\n" e.line
                  e.seq e.mask e.version e.undo.(2);
                Memory.write_line_masked t.nvm e.line e.undo e.mask;
                let stamps = stamp_page t e.line in
                let base = (e.line land 255) * Config.line_words in
                for o = 0 to Config.line_words - 1 do
                  if e.mask land (1 lsl o) <> 0 then
                    stamps.(base + o) <- max stamps.(base + o) (e.version + 1)
                done)
              entries)
        steps;
      cs.back <- [];
      cs.back_used <- 0)
    t.cores;
  Hashtbl.reset t.pending;
  {
    nvm = Memory.copy t.nvm;
    resume = Array.map (fun cs -> cs.resume) t.cores;
    slots = Array.map (fun cs -> Array.copy cs.slot_array) t.cores;
    journal = Array.map (fun cs -> List.rev_map fst cs.journal) t.cores;
    acked = Array.map (fun cs -> List.rev cs.journal) t.cores;
    acked_base = Array.map (fun cs -> cs.journal_base) t.cores;
    replayed = Array.map (fun (_, replayed) -> replayed) plans;
  }
