module Metrics = Capri_obs.Metrics
module Obs = Capri_obs.Obs

type mode = Capri | Naive_sync | Undo_sync | Redo_nowb | Volatile

let mode_name = function
  | Capri -> "capri"
  | Naive_sync -> "naive-sync"
  | Undo_sync -> "undo-sync"
  | Redo_nowb -> "redo-nowb"
  | Volatile -> "volatile"

(* The public snapshot view; the live counters are registry cells (see
   [counters] below) so a profiled run exports them without a copy. *)
type stats = {
  mutable entries_created : int;
  mutable entries_merged : int;
  mutable commits : int;
  mutable boundaries_elided : int;
  mutable ckpt_flushes : int;
  mutable redo_writes : int;
  mutable redo_skipped_invalid : int;
  mutable redo_skipped_stale : int;
  mutable scan_invalidations : int;
  mutable window_invalidations : int;
  mutable store_stall_cycles : int;
  mutable boundary_stall_cycles : int;
  mutable nvm_line_writes : int;
  mutable nvm_writes_wb : int;  (* line writes from dirty writebacks *)
  mutable nvm_writes_redo : int;  (* line writes from phase-2 redo copies *)
  mutable nvm_writes_slot : int;  (* line writes to the checkpoint arrays *)
}

(* The live counters, one registry cell per stats field. Incrementing a
   cell costs the same field write the old mutable record cost; with the
   null registry the cells simply aren't interned anywhere. Every NVM
   line write is categorized at the single choke point ({!nvm_write}'s
   [kind]), which is what keeps the accounting invariant
   [nvm_line_writes = wb + redo + slot] structural rather than hoped-for. *)
type counters = {
  c_entries_created : Metrics.Counter.t;
  c_entries_merged : Metrics.Counter.t;
  c_commits : Metrics.Counter.t;
  c_boundaries_elided : Metrics.Counter.t;
  c_ckpt_flushes : Metrics.Counter.t;
  c_redo_writes : Metrics.Counter.t;
  c_redo_skipped_invalid : Metrics.Counter.t;
  c_redo_skipped_stale : Metrics.Counter.t;
  c_scan_invalidations : Metrics.Counter.t;
  c_window_invalidations : Metrics.Counter.t;
  c_store_stall_cycles : Metrics.Counter.t;
  c_boundary_stall_cycles : Metrics.Counter.t;
  c_nvm_line_writes : Metrics.Counter.t;
  c_nvm_writes_wb : Metrics.Counter.t;
  c_nvm_writes_redo : Metrics.Counter.t;
  c_nvm_writes_slot : Metrics.Counter.t;
}

let mk_counters metrics ~mode =
  let labels = [ ("mode", mode_name mode) ] in
  let c name = Metrics.counter ~labels metrics ("persist_" ^ name) in
  {
    c_entries_created = c "entries_created";
    c_entries_merged = c "entries_merged";
    c_commits = c "commits";
    c_boundaries_elided = c "boundaries_elided";
    c_ckpt_flushes = c "ckpt_flushes";
    c_redo_writes = c "redo_writes";
    c_redo_skipped_invalid = c "redo_skipped_invalid";
    c_redo_skipped_stale = c "redo_skipped_stale";
    c_scan_invalidations = c "scan_invalidations";
    c_window_invalidations = c "window_invalidations";
    c_store_stall_cycles = c "store_stall_cycles";
    c_boundary_stall_cycles = c "boundary_stall_cycles";
    c_nvm_line_writes = c "nvm_line_writes";
    c_nvm_writes_wb = c "nvm_writes_wb";
    c_nvm_writes_redo = c "nvm_writes_redo";
    c_nvm_writes_slot = c "nvm_writes_slot";
  }

type resume =
  | Resume of { boundary : int; sp : int }
  | Done
  | Never_started

type image = {
  nvm : Memory.t;
  resume : resume array;
  slots : int array array;
  journal : int list array;
      (* per core: committed I/O journal (Section 3.3's suggested
         exactly-once treatment of outputs), in emission order *)
  acked : (int * int) list array;
      (* per core: the same journal with the cycle each output's region
         committed — what the serving layer calls an acknowledged
         request *)
}

type entry = {
  line : int;
  undo : int array;
  mutable redo : int array;
  mutable mask : int;  (* bit per stored word offset within the line *)
  mutable version : int;
  mutable valid : bool;
  seq : int;  (* dynamic region sequence number, per core *)
}

type commit_info = {
  resume_boundary : int;
  sp : int;
  elide_resume : bool;
  outs : int list;  (* the region's journaled outputs, in order *)
}

(* An item travelling the per-core proxy path, in FIFO order. *)
type item =
  | Data of entry
  | Ckpt_flush of { seq : int; slot : int; value : int }
  | Commit of { seq : int; info : commit_info }

(* A region as seen by the back-end proxy. *)
type back_region = {
  bseq : int;
  mutable bentries : entry list;  (* reverse arrival order *)
  mutable bcount : int;
  mutable bslots : (int * int) list;
  mutable bcommit : commit_info option;
}

type core_state = {
  id : int;
  front : item Queue.t;
  mutable front_data : int;  (* Data items currently in the front queue *)
  front_index : (int, entry) Hashtbl.t;  (* line -> mergeable front entry *)
  mutable staged : (int * int) list;  (* slot, value; latest first *)
  staged_index : (int, int) Hashtbl.t;
  mutable out_staged : int list;  (* I/O journal: open region, reversed *)
  mutable journal : (int * int) list;
      (* committed (output, commit cycle), reversed: the cycle stamps when
         the region carrying the output reached phase 2 — the serving
         layer's ack time *)
  mutable open_seq : int;
  mutable open_entries : int;  (* data entries created in the open region *)
  mutable next_drain : int;
  mutable back : back_region list;  (* ascending seq *)
  mutable back_used : int;
  mutable resume : resume;
  slot_array : int array;
  mutable halted : bool;
}

type event =
  | Arrive of int * item  (* core *)
  | Free of int * int  (* core, entry count to release *)

module Heap = struct
  (* Tiny binary heap on (time, serial) so equal-time events keep
     insertion order. *)
  type 'a t = {
    mutable arr : (int * int * 'a) array;
    mutable size : int;
    mutable serial : int;
  }

  let create () = { arr = Array.make 64 (0, 0, Obj.magic 0); size = 0; serial = 0 }

  let less (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h time v =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) h.arr.(0) in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    h.serial <- h.serial + 1;
    let item = (time, h.serial, v) in
    let i = ref h.size in
    h.size <- h.size + 1;
    h.arr.(!i) <- item;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let peek_time h = if h.size = 0 then None else (fun (t, _, _) -> Some t) h.arr.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let (_, _, v) as top = h.arr.(0) in
      ignore top;
      h.size <- h.size - 1;
      h.arr.(0) <- h.arr.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some v
    end
end

type t = {
  config : Config.t;
  mode : mode;
  cores : core_state array;
  events : event Heap.t;
  nvm : Memory.t;  (* durable contents *)
  nvm_stamp : (int, int array) Hashtbl.t;
      (* line -> per-word version of the stored data: the age guard must
         match the word granularity of masked redo/undo application *)
  mutable nvm_wq_free : int;  (* write-queue service timeline *)
  mutable recent_wb : (int * int * int) list;  (* line, version, ctrl time *)
  pending : (int, int array) Hashtbl.t;
      (* line -> per-core count of not-yet-committed entries; drives the
         cross-core conflict fence (see store_conflict) *)
  c : counters;
  obs : Obs.t;
}

let create ?(obs = Obs.null) config ~mode =
  {
    config;
    mode;
    cores =
      Array.init config.Config.cores (fun id ->
          {
            id;
            front = Queue.create ();
            front_data = 0;
            front_index = Hashtbl.create 64;
            staged = [];
            staged_index = Hashtbl.create 8;
            out_staged = [];
            journal = [];
            open_seq = 0;
            open_entries = 0;
            next_drain = 0;
            back = [];
            back_used = 0;
            resume = Never_started;
            slot_array = Array.make Capri_ir.Reg.count 0;
            halted = false;
          });
    events = Heap.create ();
    nvm = Memory.create ();
    nvm_stamp = Hashtbl.create 1024;
    nvm_wq_free = 0;
    recent_wb = [];
    pending = Hashtbl.create 256;
    c = mk_counters obs.Obs.metrics ~mode;
    obs;
  }

let debug_line =
  match Sys.getenv_opt "CAPRI_DEBUG_LINE" with
  | Some s -> (try Some (int_of_string s) with _ -> None)
  | None -> None

let dbg line fmt =
  if debug_line = Some line then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let mode t = t.mode

(* Thin snapshot over the registry cells: the record the callers (tests,
   bench tables) always read, rebuilt on demand. *)
let stats t =
  let v = Metrics.Counter.value in
  {
    entries_created = v t.c.c_entries_created;
    entries_merged = v t.c.c_entries_merged;
    commits = v t.c.c_commits;
    boundaries_elided = v t.c.c_boundaries_elided;
    ckpt_flushes = v t.c.c_ckpt_flushes;
    redo_writes = v t.c.c_redo_writes;
    redo_skipped_invalid = v t.c.c_redo_skipped_invalid;
    redo_skipped_stale = v t.c.c_redo_skipped_stale;
    scan_invalidations = v t.c.c_scan_invalidations;
    window_invalidations = v t.c.c_window_invalidations;
    store_stall_cycles = v t.c.c_store_stall_cycles;
    boundary_stall_cycles = v t.c.c_boundary_stall_cycles;
    nvm_line_writes = v t.c.c_nvm_line_writes;
    nvm_writes_wb = v t.c.c_nvm_writes_wb;
    nvm_writes_redo = v t.c.c_nvm_writes_redo;
    nvm_writes_slot = v t.c.c_nvm_writes_slot;
  }

let init_slots t ~core ~slots ~resume_boundary ~sp =
  let cs = t.cores.(core) in
  Array.blit slots 0 cs.slot_array 0 (Array.length cs.slot_array);
  match resume_boundary with
  | Some boundary -> cs.resume <- Resume { boundary; sp }
  | None -> cs.resume <- Never_started

let seed_core t ~core ~slots ~resume =
  let cs = t.cores.(core) in
  Array.blit slots 0 cs.slot_array 0 (Array.length cs.slot_array);
  cs.resume <- resume;
  (match resume with Done -> cs.halted <- true | Resume _ | Never_started -> ())

let stamps_of t line =
  match Hashtbl.find_opt t.nvm_stamp line with
  | Some a -> a
  | None ->
    let a = Array.make Config.line_words (-1) in
    Hashtbl.replace t.nvm_stamp line a;
    a

(* Word-granular aged write: each masked word lands only if its data is
   at least as new as what that word already holds. [kind] attributes the
   line write to one of the three traffic categories at the single choke
   point, so nvm_line_writes = wb + redo + slot holds by construction. *)
let nvm_write ?(mask = 0xFF) t ~kind ~line ~data ~version =
  let stamps = stamps_of t line in
  Metrics.Counter.inc t.c.c_nvm_line_writes;
  Metrics.Counter.inc
    (match kind with
    | `Wb -> t.c.c_nvm_writes_wb
    | `Redo -> t.c.c_nvm_writes_redo
    | `Slot -> t.c.c_nvm_writes_slot);
  let write_mask = ref 0 in
  for o = 0 to Config.line_words - 1 do
    if mask land (1 lsl o) <> 0 && version >= stamps.(o) then begin
      write_mask := !write_mask lor (1 lsl o);
      stamps.(o) <- version
    end
  done;
  dbg line "nvm_write line=%d mask=%x wrote=%x v=%d data2=%d\n" line mask
    !write_mask version data.(2);
  if !write_mask <> 0 then begin
    Memory.write_line_masked t.nvm line data !write_mask;
    true
  end
  else begin
    Metrics.Counter.inc t.c.c_redo_skipped_stale;
    false
  end

let nvm_line t line = Memory.line_snapshot t.nvm line

(* Loader/restart path: install a line of the initial (or recovered)
   durable image directly, regardless of mode. Routing this through
   {!on_writeback} would silently drop it in [Redo_nowb] mode — whose
   writeback handler discards dirty lines by design — leaving the data
   segment non-durable before the first committed region (lost by a
   crash at instruction 0; found by the fuzzer). *)
let install_line t ~line ~data ~version =
  ignore (nvm_write t ~kind:`Wb ~line ~data ~version)

(* ---------------- cross-core conflict fence ---------------- *)

(* Per line and core: how many uncommitted entries touch it, and the OR
   of their word masks. The mask clears when the count drops to zero —
   slightly conservative when several of a core's regions overlap on a
   line, never unsound. *)
let pending_counts t line =
  match Hashtbl.find_opt t.pending line with
  | Some a -> a
  | None ->
    let a = Array.make (2 * t.config.Config.cores) 0 in
    Hashtbl.replace t.pending line a;
    a

(* The pending table's only reader is [store_conflict], which is a no-op
   unless the fence is configured on — so with the fence off (the paper's
   hardware model, and every timing experiment) the per-store bookkeeping
   is skipped entirely. *)
let pending_inc t ~core ~line ~mask =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.(2 * core) <- a.(2 * core) + 1;
    a.((2 * core) + 1) <- a.((2 * core) + 1) lor mask
  end

let pending_add_mask t ~core ~line ~mask =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.((2 * core) + 1) <- a.((2 * core) + 1) lor mask
  end

let pending_dec t ~core ~line =
  if t.config.Config.conflict_fence then begin
    let a = pending_counts t line in
    a.(2 * core) <- max 0 (a.(2 * core) - 1);
    if a.(2 * core) = 0 then a.((2 * core) + 1) <- 0
  end

(* ---------------- back-end ---------------- *)

let back_region_for cs seq =
  match List.find_opt (fun r -> r.bseq = seq) cs.back with
  | Some r -> r
  | None ->
    let r = { bseq = seq; bentries = []; bcount = 0; bslots = [];
              bcommit = None } in
    cs.back <- cs.back @ [ r ];
    r

let prune_window t now =
  let w = t.config.Config.monitor_window in
  t.recent_wb <- List.filter (fun (_, _, tw) -> tw + w >= now) t.recent_wb

(* Phase 2: copy redo data of valid entries, apply checkpoint slots, update
   the resume record, and schedule the space release. *)
let do_commit t cs region info now =
  (match debug_line with
   | Some l when List.exists (fun e -> e.line = l) region.bentries ->
     Printf.eprintf "commit seq=%d resume=%d now=%d entries=%d\n" region.bseq
       info.resume_boundary now region.bcount
   | _ -> ());
  Metrics.Counter.inc t.c.c_commits;
  let commit_lines = ref 0 in
  let entries = List.rev region.bentries in
  List.iter (fun e -> pending_dec t ~core:cs.id ~line:e.line) entries;
  List.iter
    (fun e ->
      if not e.valid then Metrics.Counter.inc t.c.c_redo_skipped_invalid
      else begin
        t.nvm_wq_free <-
          max t.nvm_wq_free now + t.config.Config.nvm_write_service;
        incr commit_lines;
        if nvm_write ~mask:e.mask t ~kind:`Redo ~line:e.line ~data:e.redo
             ~version:e.version
        then Metrics.Counter.inc t.c.c_redo_writes
      end)
    entries;
  List.iter
    (fun (slot, value) -> cs.slot_array.(slot) <- value)
    (List.rev region.bslots);
  (* Slot stores are adjacent 8-byte words of the per-core checkpoint
     array: they coalesce into whole-line writes (at most 4 lines for 32
     registers). They bypass the stamp machinery (the slot arrays live
     outside data memory) but still count as NVM line traffic. *)
  let slot_lines = (List.length region.bslots + 7) / 8 in
  Metrics.Counter.add t.c.c_nvm_writes_slot slot_lines;
  Metrics.Counter.add t.c.c_nvm_line_writes slot_lines;
  commit_lines := !commit_lines + slot_lines;
  for _ = 1 to slot_lines do
    t.nvm_wq_free <- max t.nvm_wq_free now + t.config.Config.nvm_write_service
  done;
  Capri_obs.Profiler.on_commit t.obs.Obs.regions ~core:cs.id ~seq:region.bseq
    ~cycle:now ~nvm_lines:!commit_lines;
  if Capri_obs.Tracer.enabled t.obs.Obs.tracer then
    Capri_obs.Tracer.instant t.obs.Obs.tracer ~track:Capri_obs.Tracer.Proxy
      ~name:"commit" ~ts:now
      ~args:
        [
          ("core", string_of_int cs.id);
          ("seq", string_of_int region.bseq);
          ("nvm_lines", string_of_int !commit_lines);
        ];
  cs.journal <-
    List.rev_append (List.map (fun v -> (v, now)) info.outs) cs.journal;
  if not info.elide_resume then
    cs.resume <-
      (if info.resume_boundary >= 0 then
         Resume { boundary = info.resume_boundary; sp = info.sp }
       else Done);
  if region.bcount > 0 then
    Heap.push t.events (max now t.nvm_wq_free) (Free (cs.id, region.bcount));
  cs.back <- List.filter (fun r -> r != region) cs.back

let deliver t core item now =
  let cs = t.cores.(core) in
  match item with
  | Data e ->
    (* Monitoring window: a writeback that already carried data at least
       this new (same line) invalidates the arriving redo. *)
    prune_window t now;
    if
      List.exists
        (fun (line, v, _) -> line = e.line && v >= e.version)
        t.recent_wb
    then begin
      if e.valid then begin
        e.valid <- false;
        Metrics.Counter.inc t.c.c_window_invalidations
      end
    end;
    let r = back_region_for cs e.seq in
    r.bentries <- e :: r.bentries;
    r.bcount <- r.bcount + 1;
    (match r.bcommit with
     | Some info -> do_commit t cs r info now  (* late entry: can't happen
                                                  with FIFO, kept for safety *)
     | None -> ())
  | Ckpt_flush { seq; slot; value } ->
    let r = back_region_for cs seq in
    r.bslots <- (slot, value) :: r.bslots
  | Commit { seq; info } ->
    let r = back_region_for cs seq in
    r.bcommit <- Some info;
    do_commit t cs r info now

(* ---------------- draining ---------------- *)

let head_drainable t cs =
  match Queue.peek_opt cs.front with
  | None -> false
  | Some (Data _) -> cs.back_used < t.config.Config.back_proxy_entries
  | Some (Ckpt_flush _ | Commit _) -> true

let drain_one t cs now =
  let item = Queue.pop cs.front in
  (match item with
   | Data e ->
     cs.front_data <- cs.front_data - 1;
     cs.back_used <- cs.back_used + 1;
     (* The entry leaves the front-end: no longer mergeable. *)
     (match Hashtbl.find_opt cs.front_index e.line with
      | Some e' when e' == e -> Hashtbl.remove cs.front_index e.line
      | Some _ | None -> ())
   | Ckpt_flush _ | Commit _ -> ());
  Heap.push t.events
    (now + t.config.Config.proxy_path_latency)
    (Arrive (cs.id, item));
  (* Occupancy is proportional to payload: a data entry carries two cache
     lines (undo + redo), a checkpoint flush or commit marker a dozen
     bytes. *)
  let gap =
    match item with
    | Data _ -> t.config.Config.proxy_path_gap
    | Ckpt_flush _ | Commit _ -> max 1 (t.config.Config.proxy_path_gap / 4)
  in
  cs.next_drain <- now + gap

let rec advance t ~cycle =
  (* Interleave heap events and per-core drains in time order. *)
  let next_drain_candidate () =
    Array.fold_left
      (fun acc cs ->
        if head_drainable t cs then
          match acc with
          | Some (tbest, _) when tbest <= max cs.next_drain 0 -> acc
          | _ -> Some (max cs.next_drain 0, cs)
        else acc)
      None t.cores
  in
  let heap_time = Heap.peek_time t.events in
  let drain = next_drain_candidate () in
  match (heap_time, drain) with
  | None, None -> ()
  | Some th, _ when th <= cycle
                    && (match drain with
                        | Some (td, _) -> th <= td
                        | None -> true) -> (
    match Heap.pop t.events with
    | Some (Arrive (core, item)) ->
      deliver t core item th;
      advance t ~cycle
    | Some (Free (core, n)) ->
      t.cores.(core).back_used <- t.cores.(core).back_used - n;
      advance t ~cycle
    | None -> ())
  | _, Some (td, cs) when td <= cycle ->
    drain_one t cs td;
    advance t ~cycle
  | _, _ -> ()

(* Pump time forward until [cond] holds; returns the cycle at which it
   does. Used to model core stalls on full buffers. *)
let stall_until t ~cycle cond =
  let now = ref cycle in
  advance t ~cycle:!now;
  let guard = ref 0 in
  while not (cond ()) do
    incr guard;
    if !guard > 100_000_000 then failwith "Persist: stall does not resolve";
    let next_time =
      let heap = Heap.peek_time t.events in
      let drain =
        Array.fold_left
          (fun acc cs ->
            if head_drainable t cs then
              match acc with
              | Some tb when tb <= max cs.next_drain 0 -> acc
              | _ -> Some (max cs.next_drain 0)
            else acc)
          None t.cores
      in
      match (heap, drain) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (min a b)
    in
    match next_time with
    | None -> failwith "Persist: stalled with no pending events"
    | Some tn ->
      now := max !now tn;
      advance t ~cycle:!now
  done;
  !now

let fence_active t =
  t.config.Config.conflict_fence && t.mode <> Volatile

let store_conflict t ~core ~cycle ~line ~mask =
  match t.mode with
  | Volatile -> false
  | _ when not t.config.Config.conflict_fence -> false
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    advance t ~cycle;
    (match Hashtbl.find_opt t.pending line with
     | None -> false
     | Some a ->
       let conflict = ref false in
       for c = 0 to t.config.Config.cores - 1 do
         if c <> core && a.(2 * c) > 0 && a.((2 * c) + 1) land mask <> 0 then
           conflict := true
       done;
       !conflict)

(* ---------------- core-facing operations ---------------- *)

let on_store t ~core ~cycle ~line ~mask ~undo ~redo ~version =
  match t.mode with
  | Volatile -> 0
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    (* Merge with a front-resident entry of the same open region. *)
    (match Hashtbl.find_opt cs.front_index line with
     | Some e when e.seq = cs.open_seq ->
       e.redo <- redo;
       e.mask <- e.mask lor mask;
       e.version <- version;
       dbg line "merge line=%d seq=%d mask=%x v=%d redo2=%d\n" line e.seq
         e.mask version redo.(2);
       pending_add_mask t ~core ~line ~mask;
       Metrics.Counter.inc t.c.c_entries_merged;
       0
     | Some _ | None ->
       let resolved =
         if cs.front_data >= t.config.Config.front_proxy_entries then begin
           let target = cycle in
           let finish =
             stall_until t ~cycle (fun () ->
                 cs.front_data < t.config.Config.front_proxy_entries)
           in
           let stall = max 0 (finish - target) in
           Metrics.Counter.add t.c.c_store_stall_cycles stall;
           stall
         end
         else 0
       in
       let e =
         { line; undo; redo; mask; version; valid = true; seq = cs.open_seq }
       in
       dbg line "entry line=%d seq=%d mask=%x v=%d redo2=%d undo2=%d\n" line
         e.seq mask version redo.(2) undo.(2);
       pending_inc t ~core:cs.id ~line ~mask;
       Queue.push (Data e) cs.front;
       cs.front_data <- cs.front_data + 1;
       cs.open_entries <- cs.open_entries + 1;
       Hashtbl.replace cs.front_index line e;
       (* The transfer to the back-end cannot begin in the creation
          cycle, so a same-cycle second store to the line still merges. *)
       cs.next_drain <- max cs.next_drain (cycle + 1);
       Metrics.Counter.inc t.c.c_entries_created;
       resolved)

let on_ckpt t ~core ~slot ~value =
  match t.mode with
  | Volatile -> ()
  | Capri | Naive_sync | Undo_sync | Redo_nowb ->
    let cs = t.cores.(core) in
    if not (Hashtbl.mem cs.staged_index slot) then
      cs.staged <- (slot, value) :: cs.staged;
    Hashtbl.replace cs.staged_index slot value

(* Section 3.3's open I/O problem, handled as the paper suggests: outputs
   stage durably with their region and become externally visible only at
   the region's commit, so an interrupted region's re-execution cannot
   double-emit. *)
let on_out t ~core ~value =
  let cs = t.cores.(core) in
  cs.out_staged <- value :: cs.out_staged

let journal t ~core = List.rev_map fst t.cores.(core).journal

let journal_entries t ~core = List.rev t.cores.(core).journal

let seed_journal t ~core ~outs =
  (* Entries carried over a restart keep no timestamp: they were acked in
     a previous power cycle, before this engine's clock existed. *)
  t.cores.(core).journal <- List.rev_map (fun v -> (v, 0)) outs

let flush_region t cs ~boundary ~sp =
  (* Close the open region: flush staged checkpoints (final values),
     journaled outputs and the commit marker, unless the region produced
     nothing (elided boundary entry, Section 5.2.1 optimization). *)
  let staged =
    List.rev_map
      (fun (slot, _) -> (slot, Hashtbl.find cs.staged_index slot))
      cs.staged
  in
  let outs = List.rev cs.out_staged in
  let has_work = cs.open_entries > 0 || staged <> [] || outs <> [] in
  if has_work then begin
    List.iter
      (fun (slot, value) ->
        Metrics.Counter.inc t.c.c_ckpt_flushes;
        Queue.push (Ckpt_flush { seq = cs.open_seq; slot; value }) cs.front)
      staged;
    Queue.push
      (Commit
         { seq = cs.open_seq;
           info = { resume_boundary = boundary; sp; elide_resume = false;
                    outs } })
      cs.front
  end
  else Metrics.Counter.inc t.c.c_boundaries_elided;
  cs.out_staged <- [];
  cs.staged <- [];
  Hashtbl.reset cs.staged_index;
  (* Entries of the finished region still in the front-end must not merge
     with the next region's stores. *)
  Hashtbl.reset cs.front_index;
  cs.open_seq <- cs.open_seq + 1;
  cs.open_entries <- 0

let fully_drained cs = Queue.is_empty cs.front && cs.back = [] && cs.back_used = 0

let on_boundary t ~core ~cycle ~boundary ~sp =
  match t.mode with
  | Volatile -> 0
  | Capri | Redo_nowb ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary ~sp;
    0
  | Naive_sync | Undo_sync ->
    (* Synchronous region persistence: wait until everything this core has
       produced, including this region, is durable. *)
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary ~sp;
    let finish = stall_until t ~cycle (fun () -> fully_drained cs) in
    let stall = max 0 (finish - cycle) in
    Metrics.Counter.add t.c.c_boundary_stall_cycles stall;
    stall

let on_writeback t ~cycle ~line ~data ~version =
  match t.mode with
  | Volatile -> ignore (nvm_write t ~kind:`Wb ~line ~data ~version)
  | Redo_nowb ->
    (* Dirty lines are dropped: only the redo log updates NVM. *)
    ()
  | Capri | Naive_sync | Undo_sync ->
    advance t ~cycle;
    dbg line "writeback line=%d v=%d data2=%d cyc=%d\n" line version data.(2)
      cycle;
    ignore (nvm_write t ~kind:`Wb ~line ~data ~version);
    t.nvm_wq_free <- max t.nvm_wq_free cycle + t.config.Config.nvm_write_service;
    (* Scan the back-end proxies: invalidate overtaken redo entries. *)
    Array.iter
      (fun cs ->
        List.iter
          (fun r ->
            List.iter
              (fun e ->
                if e.line = line && e.valid && e.version <= version then begin
                  e.valid <- false;
                  Metrics.Counter.inc t.c.c_scan_invalidations
                end)
              r.bentries)
          cs.back)
      t.cores;
    (* Arm the monitoring window for in-flight entries. *)
    prune_window t cycle;
    t.recent_wb <- (line, version, cycle) :: t.recent_wb

let on_halt t ~core ~cycle =
  match t.mode with
  | Volatile -> 0
  | Capri | Redo_nowb ->
    (* Asynchronous region persistence extends to program exit: the final
       region's commit drains in the background (its marker flips the
       resume record to Done when it lands; a crash in between replays the
       idempotent tail). The paper's measurements are steady-state
       execution windows and likewise exclude exit-drain time. *)
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary:(-1) ~sp:0;
    cs.halted <- true;
    0
  | Naive_sync | Undo_sync ->
    let cs = t.cores.(core) in
    advance t ~cycle;
    flush_region t cs ~boundary:(-1) ~sp:0;
    let finish = stall_until t ~cycle (fun () -> fully_drained cs) in
    cs.halted <- true;
    cs.resume <- Done;
    max 0 (finish - cycle)

let load_extra_latency t (level : Hierarchy.level) =
  match (t.mode, level) with
  | Redo_nowb, (Hierarchy.Dram | Hierarchy.Nvm) ->
    t.config.Config.proxy_path_latency / 2
  | Redo_nowb, (Hierarchy.L1 | Hierarchy.L2) -> 0
  | (Capri | Naive_sync | Undo_sync | Volatile), _ -> 0

let writebacks_reach_nvm t =
  match t.mode with
  | Redo_nowb -> false
  | Capri | Naive_sync | Undo_sync | Volatile -> true

(* ---------------- crash and recovery ---------------- *)

(* Oracle-sensitivity fault injection: when armed, recovery silently
   skips rolling back interrupted regions, exactly the bug class the
   crash-consistency fuzzer's oracle exists to catch. Atomic so fuzz
   campaigns running under a domain pool read a coherent value. Test-only:
   nothing in the library ever sets it. *)
let fault_drop_undo = Atomic.make false

let crash_recover t ~cycle =
  advance t ~cycle;
  (* Battery drain: everything still in the front-end or on the path
     reaches the back-end structures. *)
  Array.iter
    (fun cs ->
      Queue.iter
        (fun item ->
          match item with
          | Data e ->
            let r = back_region_for cs e.seq in
            r.bentries <- e :: r.bentries;
            r.bcount <- r.bcount + 1
          | Ckpt_flush { seq; slot; value } ->
            let r = back_region_for cs seq in
            r.bslots <- (slot, value) :: r.bslots
          | Commit { seq; info } ->
            let r = back_region_for cs seq in
            r.bcommit <- Some info)
        cs.front;
      Queue.clear cs.front)
    t.cores;
  let rec drain_events () =
    match Heap.pop t.events with
    | Some (Arrive (core, item)) ->
      let cs = t.cores.(core) in
      (match item with
       | Data e ->
         let r = back_region_for cs e.seq in
         r.bentries <- e :: r.bentries;
         r.bcount <- r.bcount + 1
       | Ckpt_flush { seq; slot; value } ->
         let r = back_region_for cs seq in
         r.bslots <- (slot, value) :: r.bslots
       | Commit { seq; info } ->
         let r = back_region_for cs seq in
         r.bcommit <- Some info);
      drain_events ()
    | Some (Free _) -> drain_events ()
    | None -> ()
  in
  drain_events ();
  (* Section 5.4: redo committed regions in order, then undo the (at most
     one per core) interrupted region. *)
  Array.iter
    (fun cs ->
      let regions = List.sort (fun a b -> Int.compare a.bseq b.bseq) cs.back in
      List.iter
        (fun r ->
          match r.bcommit with
          | Some info ->
            List.iter
              (fun e ->
                dbg e.line "recover-redo line=%d seq=%d valid=%b v=%d redo2=%d\n"
                  e.line e.seq e.valid e.version e.redo.(2);
                if e.valid then
                  ignore
                    (nvm_write ~mask:e.mask t ~kind:`Redo ~line:e.line
                       ~data:e.redo ~version:e.version))
              (List.rev r.bentries);
            List.iter
              (fun (slot, value) -> cs.slot_array.(slot) <- value)
              (List.rev r.bslots);
            (* Committed journaled outputs survive the crash too; their
               regions reach phase 2 during recovery, at the crash
               cycle. *)
            cs.journal <-
              List.rev_append
                (List.map (fun v -> (v, cycle)) info.outs)
                cs.journal;
            if not info.elide_resume then
              if info.resume_boundary >= 0 then
                cs.resume <-
                  Resume { boundary = info.resume_boundary; sp = info.sp }
              else cs.resume <- Done
          | None ->
            (* Interrupted region: roll back with undo data, newest entry
               first. Staged slots of this region are discarded. *)
            if not (Atomic.get fault_drop_undo) then
              List.iter
                (fun e ->
                  dbg e.line "undo line=%d seq=%d mask=%x v=%d undo2=%d\n"
                    e.line e.seq e.mask e.version e.undo.(2);
                  Memory.write_line_masked t.nvm e.line e.undo e.mask;
                  let stamps = stamps_of t e.line in
                  for o = 0 to Config.line_words - 1 do
                    if e.mask land (1 lsl o) <> 0 then
                      stamps.(o) <- max stamps.(o) (e.version + 1)
                  done)
                r.bentries)
        regions;
      cs.back <- [];
      cs.back_used <- 0)
    t.cores;
  Hashtbl.reset t.pending;
  {
    nvm = Memory.copy t.nvm;
    resume = Array.map (fun cs -> cs.resume) t.cores;
    slots = Array.map (fun cs -> Array.copy cs.slot_array) t.cores;
    journal = Array.map (fun cs -> List.rev_map fst cs.journal) t.cores;
    acked = Array.map (fun cs -> List.rev cs.journal) t.cores;
  }
