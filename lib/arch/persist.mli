(** The Capri persistence engine: two-phase atomic stores over decoupled
    non-volatile proxy buffers (Section 5).

    Phase 1 creates an undo+redo entry per regular store in the per-core
    front-end proxy (beside the L1D), merging by line within the open
    region. Entries, staged register-checkpoint flushes and the region's
    commit marker travel in FIFO order down the dedicated per-core proxy
    path into the back-end proxy at the memory controller. Phase 2 runs
    when the commit marker arrives: redo data of valid entries is copied
    to NVM through the (persistent-domain) write queue, checkpoint slots
    and the resume record are updated, and the region's back-end space is
    freed once the writes retire.

    Dirty cache writebacks are also allowed to reach NVM
    (indirect-read-free, Section 5.1.1); the stale-read machinery of
    Section 5.3 — scanning the back-end on writeback and monitoring the
    path for one worst-case latency window — clears redo valid-bits of
    overtaken entries. As a formal backstop this model stamps every NVM
    line with the version of the data written (a writeback stuck behind
    unbounded front-end backpressure could otherwise be overtaken in ways
    the window cannot see); phase-2 writes are skipped when their data is
    older than the line's stamp. The paper's mechanisms remain the ones
    accounted and measured.

    The engine also hosts the design-space modes the benchmarks compare:
    [Naive_sync] (stall at every boundary until the region is fully
    persistent — the "up to 2x" strawman), [Undo_sync] (undo logging
    without asynchronous region persistence, Section 5.1.2's limitation),
    [Redo_nowb] (redo logging with dropped writebacks and indirect-read
    latency on deep loads, Section 5.1.1's problem), and [Volatile] (no
    persistence; the normalization baseline). *)

type mode = Capri | Naive_sync | Undo_sync | Redo_nowb | Volatile

val mode_name : mode -> string
(** Canonical lower-case name ("capri", "naive-sync", ...), used as the
    ["mode"] metric label. *)

(** Snapshot of the engine's counters, rebuilt by {!stats} on each call.
    The live cells are registry counters (named [persist_*], labelled
    with the mode) so a profiled run exports them without copying;
    mutating a returned snapshot has no effect on the engine. The NVM
    accounting invariant
    [nvm_line_writes = nvm_writes_wb + nvm_writes_redo + nvm_writes_slot]
    holds structurally: every line write is categorized at the single
    write choke point. *)
type stats = {
  mutable entries_created : int;
  mutable entries_merged : int;
  mutable commits : int;
  mutable boundaries_elided : int;
  mutable ckpt_flushes : int;
  mutable redo_writes : int;
  mutable redo_skipped_invalid : int;
  mutable redo_skipped_stale : int;
  mutable scan_invalidations : int;
  mutable window_invalidations : int;
  mutable store_stall_cycles : int;
  mutable boundary_stall_cycles : int;
  mutable nvm_line_writes : int;
  mutable nvm_writes_wb : int;  (** line writes from dirty writebacks *)
  mutable nvm_writes_redo : int;  (** line writes from phase-2 redo copies *)
  mutable nvm_writes_slot : int;
      (** line writes to the checkpoint slot arrays *)
  mutable compactions : int;
      (** journal checkpoint-cursor flips (see {!journal_base}) *)
  mutable journal_truncated : int;
      (** journal entries compacted out of the durable journal *)
}

type resume =
  | Resume of { boundary : int; sp : int }
  | Done
  | Never_started

type image = {
  nvm : Memory.t;  (** the durable memory image after recovery *)
  resume : resume array;  (** per core *)
  slots : int array array;  (** per core, mutable: recovery blocks update *)
  journal : int list array;
      (** per core: the committed I/O journal (see {!on_out}) *)
  acked : (int * int) list array;
      (** per core: [(output, cycle)] pairs — the journal annotated with
          the cycle each output's region committed at the back-end
          proxy. The serving layer treats that commit as the point a
          request is acknowledged to the client. *)
  acked_base : int array;
      (** per core: the durable checkpoint cursor — how many leading
          entries of [journal]/[acked] compaction has truncated from the
          {e durable} journal. The lists above stay complete (they are
          the ledger of what clients were actually told, which the
          oracles check); only the tail past the cursor survives in NVM
          and is re-served on restart, so restart cost is bounded by the
          tail, not by history. *)
  replayed : int array;
      (** per core: redo records re-applied plus undo records rolled
          back by this recovery — the per-core log-replay work the
          restart-time model charges (as a max over cores, since each
          core replays its own log in parallel). *)
}

type t

val create : ?obs:Capri_obs.Obs.t -> Config.t -> mode:mode -> t
(** [obs] defaults to {!Capri_obs.Obs.null}: counters still count (the
    {!stats} view works regardless) but nothing is registered, traced or
    profiled. With an enabled bundle the engine additionally emits a
    proxy-track instant per region commit and feeds the region profiler
    with commit cycle and NVM line counts. *)

val mode : t -> mode
val stats : t -> stats

val init_slots :
  t -> core:int -> slots:int array -> resume_boundary:int option ->
  sp:int -> unit
(** Loader setup: durably record a thread's initial register context and
    its entry boundary so a crash inside the first region can restore the
    starting state (the paper's loader-written initial checkpoint). *)

val seed_core : t -> core:int -> slots:int array -> resume:resume -> unit
(** Restart setup after recovery: install the recovered slot array and
    resume record for a core in a fresh engine. *)

val fence_active : t -> bool
(** Whether {!store_conflict} can ever return true under this engine's
    configuration and mode — lets the executor skip the per-store fence
    probe (line/mask computation included) entirely when not. *)

val store_conflict :
  t -> core:int -> cycle:int -> line:int -> mask:int -> bool
(** Cross-core conflict fence (our extension closing the paper's open
    multi-core recovery question): true while another core holds
    not-yet-committed entries for the line. The core must retry the store
    later — otherwise a committed region's redo data could embed another
    core's uncommitted value, which a post-crash rollback would clobber
    (the barrier-counter anomaly). Properly synchronized programs hit this
    only around locks/barriers, for roughly a commit latency. Conflicts
    are word-granular ([mask] = bit per word offset): undo/redo entries
    carry word masks and recovery applies them word-selectively, so
    false sharing of a line across cores needs no fence at all. *)

val on_store :
  t -> core:int -> cycle:int -> line:int -> mask:int -> undo:int array ->
  redo:int array -> version:int -> int
(** Phase-1 entry creation; returns stall cycles (front-end proxy full). *)

val on_store_word :
  t -> core:int -> cycle:int -> line:int -> mask:int -> word:int ->
  value:int -> old:int -> version:int -> memory:Memory.t -> int
(** Word-delta form of {!on_store} — the executor's hot path. Instead of
    receiving caller-built undo/redo line snapshots, the engine is told
    which word of [line] changed ([word], with [mask] its single-bit
    line mask), the [value] written and the [old] value it replaced;
    [memory] is the architectural memory {e after} the store. A merge
    into the open region's front-resident entry is a single in-place
    word update (the entry's unmasked words are unobservable: phase 2
    and recovery apply the mask), and only entry creation snapshots the
    line — so a store costs no allocation at all on the merge path and
    one line copy on the create path, versus two per store for
    {!on_store}. Returns stall cycles exactly as {!on_store} does. *)

val on_ckpt : t -> core:int -> slot:int -> value:int -> unit
(** Stage into the register-file storage (merged per slot per region). *)

val on_out : t -> core:int -> value:int -> unit
(** Journaled I/O (our implementation of the paper's Section 3.3
    suggestion): the output stages with the open region and becomes
    externally visible only at the region's commit, giving exactly-once
    output semantics across crashes. *)

val journal : t -> core:int -> int list
(** Committed journal contents, in emission order. *)

val journal_entries : t -> core:int -> (int * int) list
(** [(output, commit cycle)] pairs in emission order; entries carried in
    by {!seed_journal} report cycle 0. *)

val journal_base : t -> core:int -> int
(** The durable checkpoint cursor: how many leading journal entries
    compaction ({!Config.t.compact_interval}) has truncated from the
    durable journal. {!journal} still returns the full ledger. *)

val journal_tail : t -> core:int -> int
(** Entries still in the durable journal (past the cursor) — what a
    restart would re-serve; bounded by the compaction interval when
    compaction is on, grows with history when it is off. *)

val seed_journal : t -> core:int -> ?base:int -> outs:int list -> unit -> unit
(** Restart setup: carry a recovered journal into a fresh engine.
    [base] (default 0) restores the checkpoint cursor recorded in the
    crash image's [acked_base], so compaction state survives restarts. *)

val on_boundary : t -> core:int -> cycle:int -> boundary:int -> sp:int -> int
(** Commit the open region, open the next; returns stall cycles (0 in
    Capri mode — asynchronous region persistence). *)

val on_writeback :
  t -> cycle:int -> line:int -> data:int array -> version:int -> unit
(** A dirty line left the volatile domain (DRAM-cache eviction or final
    flush). *)

val install_line : t -> line:int -> data:int array -> version:int -> unit
(** Loader/restart path: place a line of the initial (or recovered)
    durable image into NVM directly, in every mode. Unlike
    {!on_writeback} this is never dropped in [Redo_nowb] mode, where
    ordinary dirty writebacks are discarded by design. *)

val on_halt : t -> core:int -> cycle:int -> int
(** Final implicit boundary + full drain; returns stall cycles. *)

val load_extra_latency : t -> Hierarchy.level -> int
(** Indirect-read penalty ([Redo_nowb] mode only). *)

val writebacks_reach_nvm : t -> bool
(** False in [Redo_nowb] mode: dirty lines are dropped on eviction. *)

val advance : t -> cycle:int -> unit
(** Process internal events up to the given time. *)

val nvm_line : t -> int -> int array
(** Current durable contents of a line (for stale-read oracles). *)

val crash_recover : ?jobs:int -> t -> cycle:int -> image
(** Power failure at [cycle]: volatile state dies, battery-backed proxy
    contents drain, and the Section 5.4 protocol rebuilds the durable
    image — committed regions redone in order, the interrupted region
    undone, slots and resume records as of the last committed boundary.
    Per-core log scanning/planning fans out over a [jobs]-domain pool
    (default 1); plan application runs in fixed core order, so the
    recovered image is byte-identical at any [jobs] count. *)

val fault_drop_undo : bool Atomic.t
(** Test-only fault injection: while [true], {!crash_recover} skips the
    undo pass over interrupted regions, deliberately breaking failure
    atomicity. Exists so the crash-consistency fuzzer's oracle can be
    shown to catch a real recovery bug (it must not pass vacuously).
    Never set by the library itself; tests arm it and must reset it. *)

val fault_tear_compaction : bool Atomic.t
(** Test-only fault injection: while [true], journal compaction reclaims
    the truncated entries {e before} the checkpoint cursor flips — the
    torn ordering the cursor protocol rules out. Acked outputs vanish
    from the durable record, so recovered acked streams develop a hole
    the Sla prefix oracle must report. Tests arm it and must reset it. *)
