(** Set-associative write-back cache, tags only.

    Load values come from the functional {!Memory} oracle; the hierarchy
    maintains a single-dirty-copy invariant, under which a dirty line's
    contents always equal the architectural memory's current contents, so
    caches need no data arrays. What matters architecturally is {e which}
    lines are resident/dirty and {e when} dirty lines are written back. *)

type t

type eviction = { line : int; dirty : bool }

val create : sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val mem : t -> int -> bool
val is_dirty : t -> int -> bool

val touch : t -> int -> dirty:bool -> unit
(** Mark a resident line most-recently-used; optionally set its dirty bit.
    The line must be resident. *)

val touch_if_present : t -> int -> dirty:bool -> bool
(** [mem] and [touch] fused into a single set probe: returns [true] and
    touches if the line is resident, returns [false] (cache untouched)
    otherwise. The hierarchy's per-access fast path. *)

val insert : t -> int -> dirty:bool -> eviction option
(** Allocate a line (must not be resident); returns the victim if the set
    was full. *)

val invalidate : t -> int -> bool
(** Remove the line if resident; returns whether it was dirty. *)

val dirty_lines : t -> int list
val resident : t -> int
(** Number of resident lines. *)

type stats = { insertions : int; evictions : int; dirty_evictions : int }

val stats : t -> stats
(** Allocation/eviction counts since creation ([clear] does not reset
    them). The hierarchy publishes these per level into the metrics
    registry. *)

val clear : t -> unit
