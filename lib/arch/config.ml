type t = {
  cores : int;
  l1_lines : int;
  l1_ways : int;
  l2_lines : int;
  l2_ways : int;
  dram_cache_lines : int;
  l1_hit : int;
  l2_hit : int;
  dram_hit : int;
  nvm_read : int;
  nvm_write : int;
  proxy_path_latency : int;
  proxy_path_gap : int;
  nvm_write_service : int;
  front_proxy_entries : int;
  back_proxy_entries : int;
  wpq_entries : int;
  load_shadow_div : int;
  store_miss_div : int;
  monitor_window : int;
  conflict_fence : bool;
  power_cycle_cycles : int;
      (* modeled fixed cost of a power cycle (firmware + proxy drain)
         charged by the serving layer per crash *)
  recovery_block_cycles : int;
      (* modeled cost per compiler-emitted recovery block replayed *)
  journal_replay_cycles : int;
      (* modeled cost per journal-tail entry re-acked during restart *)
  redo_replay_cycles : int;
      (* modeled cost per redo/undo log record applied by recovery *)
  compact_interval : int;
      (* journal/proxy-log compaction: once a core's durable journal
         tail reaches this many entries, a checkpoint cursor advances
         past them (their region effects are already in NVM at commit
         time, so recovery no longer replays them). 0 disables
         compaction — the durable journal then grows with history. *)
}

let line_words = 8

(* 2 GHz clock: ns * 2 = cycles. *)
let table1 =
  {
    cores = 8;
    l1_lines = 32 * 1024 / 64;
    l1_ways = 8;
    l2_lines = 16 * 1024 * 1024 / 64;
    l2_ways = 16;
    dram_cache_lines = 8 * 1024 * 1024 * 1024 / 64;
    l1_hit = 4;  (* 2 ns *)
    l2_hit = 40;  (* 20 ns *)
    dram_hit = 100;  (* DDR4-2400 access, ~50 ns *)
    nvm_read = 300;  (* 150 ns *)
    nvm_write = 600;  (* 300 ns *)
    proxy_path_latency = 40;  (* 20 ns *)
    proxy_path_gap = 4;  (* 128 B entry over a 32 B/cycle dedicated link *)
    nvm_write_service = 8;  (* ~16 GB/s aggregate across the DIMMs *)
    front_proxy_entries = 32;
    back_proxy_entries = 256;
    wpq_entries = 16;
    load_shadow_div = 4;
    store_miss_div = 8;
    monitor_window = 80;  (* 2x the proxy-path latency *)
    conflict_fence = true;
    power_cycle_cycles = 1000;
    recovery_block_cycles = 50;
    journal_replay_cycles = 4;
    redo_replay_cycles = 8;
    compact_interval = 0;
  }

let sim_default =
  {
    table1 with
    cores = 8;
    l1_lines = 4 * 1024 / 64;
    l2_lines = 32 * 1024 / 64;
    dram_cache_lines = 128 * 1024 / 64;
  }

let with_threshold threshold t = { t with back_proxy_entries = threshold }

let pp_table fmt t =
  let row name value = Format.fprintf fmt "  %-22s %s@," name value in
  Format.fprintf fmt "@[<v>Table 1: simulator configuration@,";
  row "Processor"
    (Printf.sprintf "%d cores, 2 GHz, in-order issue + OoO shadowing (1/%d)"
       t.cores t.load_shadow_div);
  row "L1 D-cache"
    (Printf.sprintf "%d KiB, %d-way, %d-cycle hit" (t.l1_lines * 64 / 1024)
       t.l1_ways t.l1_hit);
  row "L2 cache"
    (Printf.sprintf "%d KiB, %d-way, shared, %d-cycle hit"
       (t.l2_lines * 64 / 1024) t.l2_ways t.l2_hit);
  row "DRAM cache"
    (Printf.sprintf "%d KiB, direct-mapped, %d-cycle hit"
       (t.dram_cache_lines * 64 / 1024) t.dram_hit);
  row "NVM"
    (Printf.sprintf "read %d / write %d cycles, write queue %d cycles/line"
       t.nvm_read t.nvm_write t.nvm_write_service);
  row "WPQ" (Printf.sprintf "%d entries (persistent domain)" t.wpq_entries);
  row "Proxy path"
    (Printf.sprintf "%d-cycle latency, 1 entry / %d cycles per core"
       t.proxy_path_latency t.proxy_path_gap);
  row "Front-end proxy" (Printf.sprintf "%d entries" t.front_proxy_entries);
  row "Back-end proxy"
    (Printf.sprintf "%d entries per core (= store threshold)"
       t.back_proxy_entries);
  Format.fprintf fmt "@]"
