(* Chunked paged-array store.

   The old implementation kept one Hashtbl entry per touched cache line,
   which put a hash + probe on every simulated load and store — the
   simulator's hottest path. Lines are now grouped into fixed-size pages
   (a flat data array plus a per-line version array), reached by pure
   array indexing: page index = line asr page_bits, two growable page
   tables (one for negative line indices, one for non-negative — stacks
   grow downward from the data segment, so negative addresses are real).

   Sparse semantics are preserved exactly: a line is "present" iff it has
   been written, and every write path bumps the line version, so
   present <=> version > 0. [iter_lines] and [diff] enumerate only
   present lines, identical to the Hashtbl behaviour. *)

let line_words = Config.line_words

let line_bits =
  (* line_words is a power of two; precompute its log for shift/mask
     addressing on the hot path. *)
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  log2 line_words

let () = assert (1 lsl line_bits = line_words)
let line_mask = line_words - 1

(* 256 lines (16 KiB of simulated data) per page. *)
let page_bits = 8
let page_lines = 1 lsl page_bits
let page_off_mask = page_lines - 1

type page = {
  data : int array;  (* page_lines * line_words words, flat *)
  version : int array;  (* per line; 0 = never written (absent) *)
}

type t = {
  mutable pos : page option array;  (* page index >= 0 *)
  mutable neg : page option array;  (* page index < 0, stored at -1 - idx *)
}

let create () = { pos = Array.make 8 None; neg = Array.make 1 None }

let line_of_addr addr = addr asr line_bits
let addr_of_line line = line * line_words

let fresh_page () =
  { data = Array.make (page_lines * line_words) 0;
    version = Array.make page_lines 0 }

(* Page lookup that never allocates: None when the page is absent. *)
let find_page t pidx =
  if pidx >= 0 then
    if pidx < Array.length t.pos then Array.unsafe_get t.pos pidx else None
  else
    let i = -1 - pidx in
    if i < Array.length t.neg then Array.unsafe_get t.neg i else None

let grow table i =
  let n = Array.length table in
  let bigger = Array.make (max (i + 1) (2 * n)) None in
  Array.blit table 0 bigger 0 n;
  bigger

let get_page t pidx =
  if pidx >= 0 then begin
    if pidx >= Array.length t.pos then t.pos <- grow t.pos pidx;
    match t.pos.(pidx) with
    | Some p -> p
    | None ->
      let p = fresh_page () in
      t.pos.(pidx) <- Some p;
      p
  end
  else begin
    let i = -1 - pidx in
    if i >= Array.length t.neg then t.neg <- grow t.neg i;
    match t.neg.(i) with
    | Some p -> p
    | None ->
      let p = fresh_page () in
      t.neg.(i) <- Some p;
      p
  end

let read t addr =
  let line = addr asr line_bits in
  match find_page t (line asr page_bits) with
  | None -> 0
  | Some p ->
    Array.unsafe_get p.data
      (((line land page_off_mask) lsl line_bits) lor (addr land line_mask))

let write t addr v =
  let line = addr asr line_bits in
  let p = get_page t (line asr page_bits) in
  let lo = line land page_off_mask in
  Array.unsafe_set p.data ((lo lsl line_bits) lor (addr land line_mask)) v;
  Array.unsafe_set p.version lo (Array.unsafe_get p.version lo + 1)

let line_snapshot t l =
  match find_page t (l asr page_bits) with
  | None -> Array.make line_words 0
  | Some p ->
    Array.sub p.data ((l land page_off_mask) lsl line_bits) line_words

let line_version t l =
  match find_page t (l asr page_bits) with
  | None -> 0
  | Some p -> p.version.(l land page_off_mask)

let write_line t l data =
  let p = get_page t (l asr page_bits) in
  let lo = l land page_off_mask in
  Array.blit data 0 p.data (lo lsl line_bits) line_words;
  p.version.(lo) <- p.version.(lo) + 1

let write_line_masked t l data mask =
  let p = get_page t (l asr page_bits) in
  let lo = l land page_off_mask in
  let base = lo lsl line_bits in
  for o = 0 to line_words - 1 do
    if mask land (1 lsl o) <> 0 then p.data.(base + o) <- data.(o)
  done;
  p.version.(lo) <- p.version.(lo) + 1

let copy_page = function
  | None -> None
  | Some p -> Some { data = Array.copy p.data; version = Array.copy p.version }

let copy t =
  { pos = Array.map copy_page t.pos; neg = Array.map copy_page t.neg }

(* Present lines of one page table, in ascending page order. *)
let iter_table table ~pidx_of f =
  Array.iteri
    (fun i po ->
      match po with
      | None -> ()
      | Some p ->
        let page_base = pidx_of i lsl page_bits in
        for lo = 0 to page_lines - 1 do
          if p.version.(lo) > 0 then f (page_base lor lo) p lo
        done)
    table

let iter_present t f =
  (* Negative pages from most negative upward, then non-negative: line
     order is ascending, though callers must not rely on it (the Hashtbl
     implementation had no order either). *)
  let n = Array.length t.neg in
  for i = n - 1 downto 0 do
    match t.neg.(i) with
    | None -> ()
    | Some p ->
      let page_base = (-1 - i) lsl page_bits in
      for lo = 0 to page_lines - 1 do
        if p.version.(lo) > 0 then f (page_base lor lo) p lo
      done
  done;
  iter_table t.pos ~pidx_of:(fun i -> i) f

let iter_lines t f =
  iter_present t (fun l p lo ->
      f l (Array.sub p.data (lo lsl line_bits) line_words))

let zero_line = Array.make line_words 0

let line_data_or_zero t l =
  match find_page t (l asr page_bits) with
  | None -> (zero_line, 0)
  | Some p ->
    let lo = l land page_off_mask in
    if p.version.(lo) > 0 then (p.data, lo lsl line_bits) else (zero_line, 0)

let diff ?(from = min_int) a b =
  let mismatches = ref [] in
  let seen = Hashtbl.create 64 in
  let check l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      let da, abase = line_data_or_zero a l in
      let db, bbase = line_data_or_zero b l in
      for o = 0 to line_words - 1 do
        let addr = addr_of_line l + o in
        if addr >= from && da.(abase + o) <> db.(bbase + o) then
          mismatches := (addr, da.(abase + o), db.(bbase + o)) :: !mismatches
      done
    end
  in
  iter_present a (fun l _ _ -> check l);
  iter_present b (fun l _ _ -> check l);
  List.sort compare !mismatches

let equal ?from a b = diff ?from a b = []
