(** The cache hierarchy: per-core private L1Ds over a shared L2 over a
    direct-mapped memory-side DRAM cache over NVM (Optane memory mode,
    Figure 1).

    Coherence keeps the single-dirty-copy invariant (MSI-flavoured): a
    store acquires exclusive ownership, invalidating other L1 copies; a
    dirty line therefore always holds the architecturally-latest data, so
    a writeback's payload can be snapshotted from {!Memory} at eviction
    time. Dirty evictions cascade L1 -> L2 -> DRAM cache -> NVM; only the
    last step leaves the volatile domain and is reported through
    [on_nvm_writeback] (feeding {!Persist}'s stale-read machinery and the
    durable NVM image). *)

type t

type level = L1 | L2 | Dram | Nvm

val create :
  ?obs:Capri_obs.Obs.t ->
  ?labels:Capri_obs.Metrics.labels ->
  Config.t -> Memory.t ->
  on_nvm_writeback:(cycle:int -> line:int -> data:int array -> version:int -> unit) ->
  t
(** With an enabled [obs] bundle the hit/writeback/invalidation counters
    are registered in the metrics registry (as [cache_*] series, carrying
    [labels] — the executor passes the persistence mode, so per-mode
    registries merge without collisions); with the default null bundle
    they still count but are invisible to snapshots. *)

val load : t -> core:int -> cycle:int -> addr:int -> level
(** Where the line was found; allocates it upward. *)

val store : t -> core:int -> cycle:int -> addr:int -> level
(** Write-allocate; returns the level the line had to be fetched from
    ([L1] when already owned). The caller updates {!Memory} itself —
    ordering between the two does not matter to the hierarchy. *)

val latency : Config.t -> level -> int
(** Access latency to the given level. *)

val flush_all : t -> cycle:int -> unit
(** Write every dirty line back to NVM (used by the volatile baseline at
    halt and by tests; a Capri crash does {e not} flush — caches die). *)

val drop_all : t -> unit
(** Power loss: every cached line vanishes. *)

type stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable dram_hits : int;
  mutable nvm_accesses : int;
  mutable writebacks : int;
  mutable invalidations : int;
}

val stats : t -> stats
(** Snapshot of the live registry counters; mutating the returned record
    has no effect on the hierarchy. *)

val publish : t -> unit
(** Copy the per-cache allocation/eviction counts ({!Cache.stats}, the
    per-core L1s summed) into the registry as [cache_insertions] /
    [cache_evictions] / [cache_dirty_evictions] series labelled by
    level. Idempotent ([set], not [add]); call before snapshotting. *)
