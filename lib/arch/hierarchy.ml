module Metrics = Capri_obs.Metrics
module Obs = Capri_obs.Obs

type level = L1 | L2 | Dram | Nvm

(* Public snapshot; live cells are registry counters named cache_..,
   same scheme as Persist's. *)
type stats = {
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable dram_hits : int;
  mutable nvm_accesses : int;
  mutable writebacks : int;
  mutable invalidations : int;
}

type counters = {
  c_l1_hits : Metrics.Counter.t;
  c_l2_hits : Metrics.Counter.t;
  c_dram_hits : Metrics.Counter.t;
  c_nvm_accesses : Metrics.Counter.t;
  c_writebacks : Metrics.Counter.t;
  c_invalidations : Metrics.Counter.t;
}

type t = {
  config : Config.t;
  memory : Memory.t;
  l1 : Cache.t array;  (* per core *)
  l2 : Cache.t;
  dram : Cache.t;
  owner : (int, int) Hashtbl.t;  (* line -> core owning a dirty L1 copy *)
  on_nvm_writeback :
    cycle:int -> line:int -> data:int array -> version:int -> unit;
  c : counters;
  metrics : Metrics.t;
  labels : Metrics.labels;
}

let pow2_ge n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(obs = Obs.null) ?(labels = []) config memory ~on_nvm_writeback =
  let mk lines ways =
    let sets = max 1 (pow2_ge (lines / ways)) in
    Cache.create ~sets ~ways
  in
  let metrics = obs.Obs.metrics in
  let c name = Metrics.counter ~labels metrics ("cache_" ^ name) in
  {
    config;
    memory;
    l1 =
      Array.init config.Config.cores (fun _ ->
          mk config.Config.l1_lines config.Config.l1_ways);
    l2 = mk config.Config.l2_lines config.Config.l2_ways;
    dram = Cache.create ~sets:(pow2_ge config.Config.dram_cache_lines) ~ways:1;
    owner = Hashtbl.create 1024;
    on_nvm_writeback;
    c =
      {
        c_l1_hits = c "l1_hits";
        c_l2_hits = c "l2_hits";
        c_dram_hits = c "dram_hits";
        c_nvm_accesses = c "nvm_accesses";
        c_writebacks = c "writebacks";
        c_invalidations = c "invalidations";
      };
    metrics;
    labels;
  }

let latency (config : Config.t) = function
  | L1 -> config.l1_hit
  | L2 -> config.l2_hit
  | Dram -> config.dram_hit
  | Nvm -> config.nvm_read

(* Dirty eviction sinks one level down; clean evictions vanish. *)
let rec sink t ~cycle ~line ~dirty ~from =
  if dirty then begin
    Metrics.Counter.inc t.c.c_writebacks;
    match from with
    | L1 ->
      Hashtbl.remove t.owner line;
      if Cache.mem t.l2 line then Cache.touch t.l2 line ~dirty:true
      else insert_into t ~cycle t.l2 ~line ~dirty:true ~level:L2
    | L2 ->
      if Cache.mem t.dram line then Cache.touch t.dram line ~dirty:true
      else insert_into t ~cycle t.dram ~line ~dirty:true ~level:Dram
    | Dram ->
      t.on_nvm_writeback ~cycle ~line
        ~data:(Memory.line_snapshot t.memory line)
        ~version:(Memory.line_version t.memory line)
    | Nvm -> assert false
  end
  else if from = L1 then Hashtbl.remove t.owner line

and insert_into t ~cycle cache ~line ~dirty ~level =
  match Cache.insert cache line ~dirty with
  | None -> ()
  | Some { Cache.line = victim; dirty = vdirty } ->
    sink t ~cycle ~line:victim ~dirty:vdirty ~from:level

(* Find the line below L1 and remove it from there (it moves up). Returns
   the level it was found at and whether the copy was dirty. *)
let fetch_from_below t ~cycle ~line =
  (* Another core's L1? Dirty-or-clean, invalidate it; dirty data migrates
     (it stays architecturally current, nothing to write back). *)
  let stolen_dirty = ref false in
  (match Hashtbl.find_opt t.owner line with
   | Some other ->
     ignore (Cache.invalidate t.l1.(other) line);
     Hashtbl.remove t.owner line;
     Metrics.Counter.inc t.c.c_invalidations;
     stolen_dirty := true
   | None ->
     Array.iteri
       (fun _ l1 ->
         if Cache.mem l1 line then begin
           ignore (Cache.invalidate l1 line);
           Metrics.Counter.inc t.c.c_invalidations
         end)
       t.l1);
  if !stolen_dirty then (L2, true)  (* cache-to-cache transfer, L2-ish cost *)
  else if Cache.mem t.l2 line then begin
    let dirty = Cache.invalidate t.l2 line in
    (L2, dirty)
  end
  else if Cache.mem t.dram line then begin
    let dirty = Cache.invalidate t.dram line in
    (Dram, dirty)
  end
  else begin
    ignore cycle;
    (Nvm, false)
  end

let access t ~core ~cycle ~addr ~write =
  let line = Memory.line_of_addr addr in
  let l1 = t.l1.(core) in
  if Cache.touch_if_present l1 line ~dirty:write then begin
    (* On a write, ownership may still belong elsewhere only if the copy
       was shared; steal it. *)
    if write then begin
      (match Hashtbl.find_opt t.owner line with
       | Some other when other = core ->
         (* Already the exclusive dirty owner — the steady state of a
            store-heavy loop; rewriting the binding would be a no-op. *)
         ()
       | Some other ->
         ignore (Cache.invalidate t.l1.(other) line);
         Metrics.Counter.inc t.c.c_invalidations;
         (* also drop other shared copies *)
         Array.iteri
           (fun i l1o ->
             if i <> core && Cache.mem l1o line then begin
               ignore (Cache.invalidate l1o line);
               Metrics.Counter.inc t.c.c_invalidations
             end)
           t.l1;
         Hashtbl.replace t.owner line core
       | None ->
         Array.iteri
           (fun i l1o ->
             if i <> core && Cache.mem l1o line then begin
               ignore (Cache.invalidate l1o line);
               Metrics.Counter.inc t.c.c_invalidations
             end)
           t.l1;
         Hashtbl.replace t.owner line core)
    end;
    Metrics.Counter.inc t.c.c_l1_hits;
    L1
  end
  else begin
    let found_at, was_dirty = fetch_from_below t ~cycle ~line in
    (match found_at with
     | L2 -> Metrics.Counter.inc t.c.c_l2_hits
     | Dram -> Metrics.Counter.inc t.c.c_dram_hits
     | Nvm -> Metrics.Counter.inc t.c.c_nvm_accesses
     | L1 -> assert false);
    let dirty = write || was_dirty in
    if write then Hashtbl.replace t.owner line core
    else if was_dirty then Hashtbl.replace t.owner line core;
    insert_into t ~cycle l1 ~line ~dirty ~level:L1;
    found_at
  end

let load t ~core ~cycle ~addr = access t ~core ~cycle ~addr ~write:false
let store t ~core ~cycle ~addr = access t ~core ~cycle ~addr ~write:true

let flush_all t ~cycle =
  Array.iter
    (fun l1 ->
      List.iter
        (fun line ->
          ignore (Cache.invalidate l1 line);
          Hashtbl.remove t.owner line;
          t.on_nvm_writeback ~cycle ~line
            ~data:(Memory.line_snapshot t.memory line)
            ~version:(Memory.line_version t.memory line))
        (Cache.dirty_lines l1))
    t.l1;
  List.iter
    (fun line ->
      ignore (Cache.invalidate t.l2 line);
      t.on_nvm_writeback ~cycle ~line
        ~data:(Memory.line_snapshot t.memory line)
        ~version:(Memory.line_version t.memory line))
    (Cache.dirty_lines t.l2);
  List.iter
    (fun line ->
      ignore (Cache.invalidate t.dram line);
      t.on_nvm_writeback ~cycle ~line
        ~data:(Memory.line_snapshot t.memory line)
        ~version:(Memory.line_version t.memory line))
    (Cache.dirty_lines t.dram)

let drop_all t =
  Array.iter Cache.clear t.l1;
  Cache.clear t.l2;
  Cache.clear t.dram;
  Hashtbl.reset t.owner

let stats t =
  let v = Metrics.Counter.value in
  {
    l1_hits = v t.c.c_l1_hits;
    l2_hits = v t.c.c_l2_hits;
    dram_hits = v t.c.c_dram_hits;
    nvm_accesses = v t.c.c_nvm_accesses;
    writebacks = v t.c.c_writebacks;
    invalidations = v t.c.c_invalidations;
  }

(* Publish per-cache allocation/eviction counts as registry series; [set]
   makes this idempotent, so callers may publish at any checkpoint. The
   per-core L1s fold into one series — their sum is the architectural
   figure and keeps the document independent of core count. *)
let publish t =
  let put name (s : Cache.stats list) =
    let tot f = List.fold_left (fun a x -> a + f x) 0 s in
    let set field v =
      Metrics.Counter.set
        (Metrics.counter ~labels:(("level", name) :: t.labels) t.metrics field)
        v
    in
    set "cache_insertions" (tot (fun (x : Cache.stats) -> x.Cache.insertions));
    set "cache_evictions" (tot (fun (x : Cache.stats) -> x.Cache.evictions));
    set "cache_dirty_evictions"
      (tot (fun (x : Cache.stats) -> x.Cache.dirty_evictions))
  in
  put "l1" (Array.to_list (Array.map Cache.stats t.l1));
  put "l2" [ Cache.stats t.l2 ];
  put "dram" [ Cache.stats t.dram ]
