type way = { mutable line : int; mutable dirty : bool; mutable lru : int }
(* line = -1 for invalid *)

type t = {
  sets : int;
  ways : way array array;
  mutable tick : int;  (* LRU clock *)
  mutable insertions : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
}

type eviction = { line : int; dirty : bool }

type stats = { insertions : int; evictions : int; dirty_evictions : int }

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: sets must be a positive power of two";
  {
    sets;
    ways =
      Array.init sets (fun _ ->
          Array.init ways (fun _ -> { line = -1; dirty = false; lru = 0 }));
    tick = 0;
    insertions = 0;
    evictions = 0;
    dirty_evictions = 0;
  }

let set_of t line = line land (t.sets - 1)

(* Associativity is small (<= 16 ways), so a linear probe of the set beats
   hashing the line number on every simulated access. *)
let find_way t line =
  let set = t.ways.(set_of t line) in
  let n = Array.length set in
  let rec go i =
    if i >= n then None
    else
      let w = Array.unsafe_get set i in
      if w.line = line then Some w else go (i + 1)
  in
  go 0

let mem t line = find_way t line <> None

let is_dirty t line =
  match find_way t line with Some w -> w.dirty | None -> false

let touch t line ~dirty =
  match find_way t line with
  | Some w ->
    t.tick <- t.tick + 1;
    w.lru <- t.tick;
    if dirty then w.dirty <- true
  | None -> invalid_arg "Cache.touch: line not resident"

(* Fused residency test + touch: one set probe and no option allocation —
   the per-access fast path of {!Hierarchy.access} ([mem] followed by
   [touch] probes the set twice). Returns whether the line was resident;
   a miss leaves the cache untouched. *)
let touch_if_present t line ~dirty =
  let set = t.ways.(set_of t line) in
  let n = Array.length set in
  let rec go i =
    if i >= n then false
    else
      let w = Array.unsafe_get set i in
      if w.line = line then begin
        t.tick <- t.tick + 1;
        w.lru <- t.tick;
        if dirty then w.dirty <- true;
        true
      end
      else go (i + 1)
  in
  go 0

let insert t line ~dirty =
  assert (not (mem t line));
  let set = t.ways.(set_of t line) in
  t.tick <- t.tick + 1;
  (* Prefer an invalid way; otherwise evict the LRU way. *)
  let victim = ref set.(0) in
  Array.iter
    (fun (w : way) ->
      let v : way = !victim in
      if w.line = -1 && v.line <> -1 then victim := w
      else if w.line <> -1 && v.line <> -1 && w.lru < v.lru then victim := w)
    set;
  let w = !victim in
  let evicted =
    if w.line = -1 then None else Some { line = w.line; dirty = w.dirty }
  in
  t.insertions <- t.insertions + 1;
  (match evicted with
  | Some e ->
    t.evictions <- t.evictions + 1;
    if e.dirty then t.dirty_evictions <- t.dirty_evictions + 1
  | None -> ());
  w.line <- line;
  w.dirty <- dirty;
  w.lru <- t.tick;
  evicted

let invalidate t line =
  match find_way t line with
  | Some (w : way) ->
    let dirty = w.dirty in
    w.line <- -1;
    w.dirty <- false;
    dirty
  | None -> false

let dirty_lines t =
  let acc = ref [] in
  Array.iter
    (fun set ->
      Array.iter
        (fun (w : way) -> if w.line <> -1 && w.dirty then acc := w.line :: !acc)
        set)
    t.ways;
  !acc

let resident t =
  let n = ref 0 in
  Array.iter
    (fun set ->
      Array.iter (fun (w : way) -> if w.line <> -1 then incr n) set)
    t.ways;
  !n

let stats (t : t) =
  {
    insertions = t.insertions;
    evictions = t.evictions;
    dirty_evictions = t.dirty_evictions;
  }

let clear t =
  Array.iter
    (fun set ->
      Array.iter
        (fun (w : way) ->
          w.line <- -1;
          w.dirty <- false)
        set)
    t.ways
