(** Simulator configuration (the paper's Table 1).

    The clock is 2 GHz, so 1 cycle = 0.5 ns; latencies below are cycles.
    {!table1} carries the paper's capacities verbatim; {!sim_default}
    scales the cache capacities down to match the synthetic workloads'
    working sets (megabyte-scale caches would simply never miss at
    simulation scale and hide all memory-system behaviour), keeping every
    latency and the proxy/queue structure identical. *)

type t = {
  cores : int;
  (* capacities, in 64-byte lines *)
  l1_lines : int;
  l1_ways : int;
  l2_lines : int;
  l2_ways : int;
  dram_cache_lines : int;  (** direct-mapped, memory-side *)
  (* latencies, cycles *)
  l1_hit : int;
  l2_hit : int;
  dram_hit : int;
  nvm_read : int;
  nvm_write : int;
  proxy_path_latency : int;
  (* bandwidth / occupancy *)
  proxy_path_gap : int;  (** cycles between successive entries per core *)
  nvm_write_service : int;  (** cycles per line retired by the write queue *)
  front_proxy_entries : int;  (** 32 in the paper (4 KiB) *)
  back_proxy_entries : int;  (** = compiler store threshold *)
  wpq_entries : int;
  (* core model *)
  load_shadow_div : int;
      (** out-of-order latency hiding: a load stalls the pipeline for
          [latency / load_shadow_div] cycles *)
  store_miss_div : int;
      (** store-buffer hiding of store-miss fetch latency *)
  monitor_window : int;
      (** stale-read monitoring window = worst-case proxy-path latency *)
  conflict_fence : bool;
      (** our extension for sound multi-core recovery: delay a store while
          another core holds uncommitted entries for the same words (see
          {!Persist.store_conflict}). On by default; benchmarks also
          measure with it off, which matches the paper's hardware (the
          paper leaves multi-core crash interleavings open). *)
  (* recovery model (serving layer): the modeled cost of a restart is
     [power_cycle_cycles + max over cores of (blocks * recovery_block_cycles
     + journal tail * journal_replay_cycles + log records *
     redo_replay_cycles)] — max, not sum, because per-core recovery work
     is independent and replays in parallel. *)
  power_cycle_cycles : int;  (** fixed per-crash cost (firmware + drain) *)
  recovery_block_cycles : int;  (** per compiler recovery block replayed *)
  journal_replay_cycles : int;  (** per journal-tail entry re-acked *)
  redo_replay_cycles : int;  (** per redo/undo log record applied *)
  compact_interval : int;
      (** journal/proxy-log compaction threshold: once a core's durable
          journal tail holds this many entries, the checkpoint cursor
          flips past them — their regions' effects are already durable
          in NVM at commit time, so recovery stops replaying them. 0
          disables compaction (the durable journal grows with history,
          and so does restart cost). *)
}

val table1 : t
(** The paper's configuration: 8 cores, 32 KiB L1, 16 MiB L2, 8 GiB DRAM
    cache, 32 GiB NVM (150/300 ns), 20 ns proxy path, threshold 256. *)

val sim_default : t
(** Simulation-scale variant: same latencies/structure, caches sized for
    the synthetic workloads (L1 4 KiB, L2 32 KiB, DRAM cache 128 KiB). *)

val with_threshold : int -> t -> t
(** Sets [back_proxy_entries], which the compiler threshold dictates. *)

val line_words : int
(** Words per cache line (8 x 8 B = 64 B). *)

val pp_table : Format.formatter -> t -> unit
(** Renders the configuration as the paper's Table 1. *)
