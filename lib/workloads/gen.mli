(** Random structured-program generator (promoted from the test tree).

    Used by the qcheck properties and by the crash-consistency fuzzer
    (`lib/fuzz`). Programs are generated as a small statement AST —
    terminating and valid by construction — and lowered to the IR. The
    AST is exposed so the fuzzer's shrinker can delete statements and
    re-lower, and so minimal reproducers can be pretty-printed.

    Multi-core generation: each thread owns a disjoint slice of the data
    array; a single shared word is updated only through commutative,
    associative atomics; threads never read each other's state. Final
    memory, per-core outputs and r0 are therefore deterministic under
    any interleaving — the property the differential and crash oracles
    rely on. *)

open Capri_ir

type stmt =
  | Arith of int * Instr.binop * int * int  (** dst, op, src reg, imm *)
  | Li of int * int
  | LoadArr of int * int  (** dst reg, index reg (mod slice size) *)
  | StoreArr of int * int  (** index reg, src reg *)
  | CountedLoop of int * stmt list  (** compile-time trip count *)
  | DataLoop of stmt list  (** trip count read from memory at run time *)
  | IfNz of int * stmt list * stmt list
  | Fence
  | AtomicAdd of int * int  (** private slice: index reg, amount *)
  | AtomicShared of Instr.binop * int
      (** cross-core shared word; op is commutative and associative *)
  | RmwSweep of int * int * int
      (** straight-line load-add-store over (words, stride, addend) slice
          words — no boundary triggers, so all its stores share one
          region; the pattern that makes recovery's undo pass matter *)
  | CallLeaf of int  (** argument register *)
  | Emit of int

type prog = {
  thread_stmts : stmt list list;  (** index 0 = main, then workers *)
  leaf_body : stmt list;
  array_words : int;  (** per-thread slice size; power of two *)
}

val generate : ?cores:int -> ?array_words:int -> int -> prog
(** Deterministic generation from a seed; [cores] threads (default 1).
    [array_words] sets the per-thread slice size (power of two, default
    32) — larger slices spread stores over more cache lines, forcing
    dirty writebacks of uncommitted data under small cache configs (the
    oracle-sensitivity tests rely on this). *)

val cores : prog -> int

val restrict : prog -> keep:int list list -> prog
(** Keep only the listed top-level statement indices of each thread
    (one index list per thread) — the shrinker's program reducer. *)

val lower : prog -> Program.t * Capri_runtime.Executor.thread_spec list
(** Lower to IR plus the matching thread specs (one per thread). *)

val program_of_seed : int -> Program.t
(** [fst (lower (generate seed))] — the single-threaded qcheck entry. *)

val kernel_of_seed : ?cores:int -> int -> Kernel.t

val pp_stmt : Format.formatter -> stmt -> unit
val pp_prog : Format.formatter -> prog -> unit
