(* Random structured programs for property-based testing and the
   crash-consistency fuzzer (promoted from test/gen_prog.ml).

   Programs are generated as a small statement AST (guaranteeing
   termination and validity by construction) and lowered to the IR.
   Register discipline: callers use r1-r15, callees touch only r0 and
   r20-r25, so nothing is clobbered across calls; loop counters live in
   r16-r19 by nesting depth; memory accesses stay inside one data array
   (indices are taken modulo the slice size).

   Multi-core specs: every thread owns a disjoint slice of the data
   array (base kept in r25, which no generated statement touches) and a
   single extra word is shared between all cores, updated only through
   commutative-associative atomics — so the final memory image is
   deterministic under any interleaving, which the differential and
   crash oracles require. *)

open Capri_ir

type stmt =
  | Arith of int * Instr.binop * int * int  (* dst, op, src reg, imm *)
  | Li of int * int
  | LoadArr of int * int  (* dst reg, index reg *)
  | StoreArr of int * int  (* index reg, src reg *)
  | CountedLoop of int * stmt list  (* trips, body *)
  | DataLoop of stmt list  (* trip count read from memory at run time *)
  | IfNz of int * stmt list * stmt list
  | Fence
  | AtomicAdd of int * int  (* private slice: index reg, amount *)
  | AtomicShared of Instr.binop * int  (* shared word: comm/assoc op, amount *)
  | RmwSweep of int * int * int  (* words, stride, addend *)
  | CallLeaf of int  (* argument register *)
  | Emit of int

type prog = {
  thread_stmts : stmt list list;  (* index 0 = main, then workers *)
  leaf_body : stmt list;
  array_words : int;  (* per-thread slice size; power of two *)
}

(* ---------------- generation ---------------- *)

let caller_regs = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let callee_regs = [ 20; 21; 22; 23; 24 ]

let gen_reg rng regs = List.nth regs (Capri_util.Rng.int rng (List.length regs))

let gen_binop rng =
  let ops =
    [| Instr.Add; Instr.Sub; Instr.Mul; Instr.Xor; Instr.And; Instr.Or;
       Instr.Min; Instr.Max |]
  in
  ops.(Capri_util.Rng.int rng (Array.length ops))

(* Ops safe on the cross-core shared word.
   Each of these is commutative and associative on its own, but they do
   not commute with each other (max then add ≠ add then max), so one op
   is chosen per program and every thread's shared-word atomics use it —
   otherwise the shared word's final value would depend on the
   interleaving and the oracles' memory comparison would be unsound. *)
let shared_ops = [| Instr.Add; Instr.Xor; Instr.Min; Instr.Max; Instr.Or |]

let rec gen_stmt rng ~depth ~regs ~allow_call ~shared_op =
  let pick = Capri_util.Rng.int rng 100 in
  if pick < 25 then
    Arith (gen_reg rng regs, gen_binop rng, gen_reg rng regs,
           Capri_util.Rng.int_in rng 1 9)
  else if pick < 35 then Li (gen_reg rng regs, Capri_util.Rng.int rng 100)
  else if pick < 50 then LoadArr (gen_reg rng regs, gen_reg rng regs)
  else if pick < 65 then StoreArr (gen_reg rng regs, gen_reg rng regs)
  else if pick < 75 && depth > 0 then
    if Capri_util.Rng.bool rng then
      CountedLoop
        (Capri_util.Rng.int_in rng 1 6,
         gen_stmts rng ~depth:(depth - 1) ~regs ~allow_call ~shared_op
           ~len:(Capri_util.Rng.int_in rng 1 4))
    else
      DataLoop
        (gen_stmts rng ~depth:(depth - 1) ~regs ~allow_call ~shared_op
           ~len:(Capri_util.Rng.int_in rng 1 4))
  else if pick < 85 && depth > 0 then
    IfNz
      (gen_reg rng regs,
       gen_stmts rng ~depth:(depth - 1) ~regs ~allow_call ~shared_op
         ~len:(Capri_util.Rng.int_in rng 1 3),
       gen_stmts rng ~depth:(depth - 1) ~regs ~allow_call ~shared_op
         ~len:(Capri_util.Rng.int_in rng 0 3))
  else if pick < 88 then Fence
  else if pick < 90 then
    RmwSweep
      (Capri_util.Rng.int_in rng 8 24, Capri_util.Rng.int_in rng 1 4,
       Capri_util.Rng.int_in rng 1 9)
  else if pick < 94 then
    if Capri_util.Rng.bool rng then
      AtomicAdd (gen_reg rng regs, Capri_util.Rng.int_in rng 1 5)
    else AtomicShared (shared_op, Capri_util.Rng.int_in rng 1 31)
  else if pick < 97 && allow_call then CallLeaf (gen_reg rng regs)
  else Emit (gen_reg rng regs)

and gen_stmts rng ~depth ~regs ~len ~allow_call ~shared_op =
  List.init len (fun _ -> gen_stmt rng ~depth ~regs ~allow_call ~shared_op)

let generate ?(cores = 1) ?(array_words = 32) seed =
  if cores < 1 then invalid_arg "Gen.generate: cores must be >= 1";
  if array_words land (array_words - 1) <> 0 || array_words <= 0 then
    invalid_arg "Gen.generate: array_words must be a power of two";
  let rng = Capri_util.Rng.create seed in
  let shared_op = Capri_util.Rng.choose rng shared_ops in
  let main_stmts =
    gen_stmts rng ~depth:3 ~regs:caller_regs ~allow_call:true ~shared_op
      ~len:(Capri_util.Rng.int_in rng 4 12)
  in
  let leaf_body =
    (* no calls inside the leaf: recursion would be unbounded *)
    gen_stmts rng ~depth:1 ~regs:callee_regs ~allow_call:false ~shared_op
      ~len:(Capri_util.Rng.int_in rng 2 6)
  in
  let workers =
    List.init (cores - 1) (fun _ ->
        gen_stmts rng ~depth:2 ~regs:caller_regs ~allow_call:true ~shared_op
          ~len:(Capri_util.Rng.int_in rng 3 8))
  in
  { thread_stmts = main_stmts :: workers; leaf_body; array_words }

let cores p = List.length p.thread_stmts

let restrict p ~keep =
  if List.length keep <> cores p then
    invalid_arg "Gen.restrict: keep mask arity mismatch";
  {
    p with
    thread_stmts =
      List.map2
        (fun ks stmts ->
          List.filteri (fun i _ -> List.mem i ks) stmts)
        keep p.thread_stmts;
  }

(* ---------------- lowering ---------------- *)

let r = Reg.of_int
let rg i = Builder.reg (r i)
let im = Builder.imm

(* Scratch registers for address computation and loop bounds. *)
let addr_tmp = 28
let bound_tmp = 27
let arr_base = 26
let slice_reg = 25  (* this thread's slice base; never generated as a dst *)

let rec emit_stmt f ~shared ~mask ~loop_depth stmt =
  match stmt with
  | Arith (dst, op, src, k) ->
    Builder.binop f op (r dst) (rg src) (im k)
  | Li (dst, v) -> Builder.li f (r dst) v
  | LoadArr (dst, idx) ->
    Builder.binop f Instr.And (r addr_tmp) (rg idx) (im mask);
    Builder.add f (r addr_tmp) (rg addr_tmp) (rg arr_base);
    Builder.load f (r dst) ~base:(r addr_tmp) ()
  | StoreArr (idx, src) ->
    Builder.binop f Instr.And (r addr_tmp) (rg idx) (im mask);
    Builder.add f (r addr_tmp) (rg addr_tmp) (rg arr_base);
    Builder.store f ~base:(r addr_tmp) (rg src)
  | CountedLoop (trips, body) ->
    let idx = 16 + loop_depth in
    let header = Builder.block f "gh" in
    let bodyb = Builder.block f "gb" in
    let exit_ = Builder.block f "gx" in
    Builder.li f (r idx) 0;
    Builder.jump f header;
    Builder.switch f header;
    Builder.binop f Instr.Lt (r 30) (rg idx) (im trips);
    Builder.branch f (rg 30) bodyb exit_;
    Builder.switch f bodyb;
    List.iter (emit_stmt f ~shared ~mask ~loop_depth:(loop_depth + 1)) body;
    Builder.add f (r idx) (rg idx) (im 1);
    Builder.jump f header;
    Builder.switch f exit_
  | DataLoop body ->
    (* Trip count = slice[0] mod 4 + 1, unknown at compile time. *)
    let idx = 16 + loop_depth in
    let header = Builder.block f "dh" in
    let bodyb = Builder.block f "db" in
    let exit_ = Builder.block f "dx" in
    Builder.load f (r bound_tmp) ~base:(r arr_base) ();
    Builder.binop f Instr.And (r bound_tmp) (rg bound_tmp) (im 3);
    Builder.add f (r bound_tmp) (rg bound_tmp) (im 1);
    Builder.li f (r idx) 0;
    Builder.jump f header;
    Builder.switch f header;
    Builder.binop f Instr.Lt (r 30) (rg idx) (rg bound_tmp);
    Builder.branch f (rg 30) bodyb exit_;
    Builder.switch f bodyb;
    List.iter (emit_stmt f ~shared ~mask ~loop_depth:(loop_depth + 1)) body;
    Builder.add f (r idx) (rg idx) (im 1);
    Builder.jump f header;
    Builder.switch f exit_
  | IfNz (cond, then_, else_) ->
    let tb = Builder.block f "gt" in
    let eb = Builder.block f "ge" in
    let join = Builder.block f "gj" in
    Builder.branch f (rg cond) tb eb;
    Builder.switch f tb;
    List.iter (emit_stmt f ~shared ~mask ~loop_depth) then_;
    Builder.jump f join;
    Builder.switch f eb;
    List.iter (emit_stmt f ~shared ~mask ~loop_depth) else_;
    Builder.jump f join;
    Builder.switch f join
  | Fence -> Builder.fence f
  | AtomicAdd (idx, k) ->
    Builder.binop f Instr.And (r addr_tmp) (rg idx) (im mask);
    Builder.add f (r addr_tmp) (rg addr_tmp) (rg arr_base);
    Builder.atomic_rmw f Instr.Add (r 29) ~base:(r addr_tmp) (im k)
  | AtomicShared (op, k) ->
    Builder.li f (r addr_tmp) shared;
    Builder.atomic_rmw f op (r 29) ~base:(r addr_tmp) (im k)
  | RmwSweep (words, stride, k) ->
    (* Straight-line load-add-store over [words] slice words [stride]
       apart. Unlike atomics (which are boundary triggers), nothing here
       starts a region, so the whole sweep's stores share one region —
       dirtying enough lines that small caches write uncommitted data
       back to NVM mid-region. This is the access pattern that makes
       recovery's undo pass observable (the oracle-sensitivity tests
       depend on it). r30 only carries values within a single lowered
       statement, so it is safe as the read-modify-write temporary. *)
    for i = 0 to words - 1 do
      Builder.li f (r addr_tmp) ((i * stride) land mask);
      Builder.add f (r addr_tmp) (rg addr_tmp) (rg arr_base);
      Builder.load f (r 30) ~base:(r addr_tmp) ();
      Builder.binop f Instr.Add (r 30) (rg 30) (im k);
      Builder.store f ~base:(r addr_tmp) (rg 30)
    done
  | CallLeaf arg ->
    Builder.mv f (r 0) (r arg);
    Builder.call_cont f "leaf"
  | Emit src -> Builder.out f (rg src)

let thread_func_name t = if t = 0 then "main" else Printf.sprintf "w%d" t

(* Each thread function: set up the slice base, run its statements, then
   emit a digest of its own slice so outputs reflect memory. Threads
   never read another thread's slice (workers may still be running when
   one finishes), and the shared word is write-only via atomics, so the
   observable behaviour is interleaving-independent. *)
let emit_thread f ~slice_base ~shared ~mask ~array_words stmts =
  Builder.li f (r arr_base) slice_base;
  Builder.li f (r slice_reg) slice_base;
  List.iter (emit_stmt f ~shared ~mask ~loop_depth:0) stmts;
  Builder.li f (r 9) 0;
  let header = Builder.block f "digest.h" in
  let body = Builder.block f "digest.b" in
  let exit_ = Builder.block f "digest.x" in
  Builder.li f (r 10) 0;
  Builder.jump f header;
  Builder.switch f header;
  Builder.binop f Instr.Lt (r 30) (rg 10) (im array_words);
  Builder.branch f (rg 30) body exit_;
  Builder.switch f body;
  Builder.add f (r addr_tmp) (rg arr_base) (rg 10);
  Builder.load f (r 11) ~base:(r addr_tmp) ();
  Builder.binop f Instr.Xor (r 9) (rg 9) (rg 11);
  Builder.add f (r 10) (rg 10) (im 1);
  Builder.jump f header;
  Builder.switch f exit_;
  Builder.out f (rg 9);
  Builder.halt f

let lower (p : prog) =
  let n = cores p in
  let mask = p.array_words - 1 in
  let b = Builder.create () in
  let arr =
    Builder.alloc_init b
      (Array.init (n * p.array_words) (fun i -> (i * 17) mod 23))
  in
  let shared = Builder.alloc_init b [| 0 |] in
  (* leaf(r0) -> r0; uses the calling thread's slice via r25 *)
  let leaf = Builder.func b "leaf" in
  Builder.mv leaf (r arr_base) (r slice_reg);
  List.iter
    (emit_stmt leaf ~shared ~mask ~loop_depth:2)
    p.leaf_body;
  Builder.add leaf (r 0) (rg 0) (rg 20);
  Builder.ret leaf;
  List.iteri
    (fun t stmts ->
      let f = Builder.func b (thread_func_name t) in
      emit_thread f
        ~slice_base:(arr + (t * p.array_words))
        ~shared ~mask ~array_words:p.array_words stmts)
    p.thread_stmts;
  let program = Builder.finish b ~main:"main" in
  let threads =
    List.mapi
      (fun t _ -> { Capri_runtime.Executor.func = thread_func_name t; args = [] })
      p.thread_stmts
  in
  (program, threads)

let program_of_seed seed = fst (lower (generate seed))

let kernel_of_seed ?(cores = 1) seed =
  let p = generate ~cores seed in
  let program, threads = lower p in
  {
    Kernel.name = Printf.sprintf "gen:%d@%d" seed cores;
    suite = Kernel.Spec;
    description = "randomly generated structured program (fuzzer input)";
    program;
    threads;
  }

(* ---------------- pretty-printing (shrunk reproducers) ---------------- *)

let rec pp_stmt fmt = function
  | Arith (d, op, s, k) ->
    Format.fprintf fmt "r%d := r%d %s %d" d s (Instr.binop_name op) k
  | Li (d, v) -> Format.fprintf fmt "r%d := %d" d v
  | LoadArr (d, i) -> Format.fprintf fmt "r%d := arr[r%d]" d i
  | StoreArr (i, s) -> Format.fprintf fmt "arr[r%d] := r%d" i s
  | CountedLoop (trips, body) ->
    Format.fprintf fmt "@[<v 2>loop %d {%a@]@,}" trips pp_body body
  | DataLoop body ->
    Format.fprintf fmt "@[<v 2>loop arr[0]&3+1 {%a@]@,}" pp_body body
  | IfNz (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if r%d {%a@]@,}" c pp_body t;
    (match e with
     | [] -> ()
     | _ -> Format.fprintf fmt "@[<v 2> else {%a@]@,}" pp_body e)
  | Fence -> Format.fprintf fmt "fence"
  | AtomicAdd (i, k) -> Format.fprintf fmt "atomic arr[r%d] += %d" i k
  | AtomicShared (op, k) ->
    Format.fprintf fmt "atomic shared %s= %d" (Instr.binop_name op) k
  | RmwSweep (w, s, k) ->
    Format.fprintf fmt "sweep %d words stride %d: arr[i] += %d" w s k
  | CallLeaf a -> Format.fprintf fmt "call leaf(r%d)" a
  | Emit s -> Format.fprintf fmt "emit r%d" s

and pp_body fmt body =
  List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) body

let pp_prog fmt p =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun t stmts ->
      Format.fprintf fmt "@[<v 2>%s:%a@]@," (thread_func_name t) pp_body stmts)
    p.thread_stmts;
  Format.fprintf fmt "@[<v 2>leaf:%a@]@," pp_body p.leaf_body;
  Format.fprintf fmt "@]"
