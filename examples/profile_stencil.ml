(* Where do the persistence cycles go? Profile the `ocean` grid stencil
   under Capri's asynchronous two-phase protocol and under the naive
   synchronous baseline, and put their hottest dynamic regions side by
   side: same regions, same stores — but the synchronous design pays for
   them in boundary stalls while Capri drains them through the proxy
   path in the background. The boundary-reason breakdown shows why the
   compiler cut the kernel where it did.

     dune exec examples/profile_stencil.exe
*)

open Capri
module W = Capri_workloads

let profile_mode kernel mode =
  Profile.run ~focus:mode ~modes:[ mode ] ~options:Options.default
    ~program:kernel.W.Kernel.program ~threads:kernel.W.Kernel.threads ()

let () =
  let kernel = W.Splash3.ocean ~threads:4 ~scale:6 () in
  Printf.printf "kernel: %s\n  %s\n\n" kernel.W.Kernel.name
    kernel.W.Kernel.description;

  let capri = profile_mode kernel Persist.Capri in
  let naive = profile_mode kernel Persist.Naive_sync in
  (match (capri.Profile.results, naive.Profile.results) with
   | [ (_, c) ], [ (_, n) ] ->
     Printf.printf "capri:      %7d cycles\nnaive-sync: %7d cycles (%.2fx)\n\n"
       c.Executor.cycles n.Executor.cycles
       (float_of_int n.Executor.cycles /. float_of_int c.Executor.cycles)
   | _ -> assert false);

  (* The partition (and so the reason breakdown) is mode-independent:
     both profiles compiled the same program the same way. *)
  print_string (Profile.render_reasons capri);
  print_newline ();

  print_endline "top-10 hottest regions, capri (stall = store-buffer backpressure only):";
  print_string (Profile.render_top capri ~n:10);
  print_newline ();
  print_endline "top-10 hottest regions, naive-sync (stall = full drain at every boundary):";
  print_string (Profile.render_top naive ~n:10)
