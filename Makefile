# Convenience entry points over dune. `make check` is the tier-1 gate
# (see ROADMAP.md): the full build, every test suite, and the four
# determinism smokes (bench, fuzz, service bench, perf) that
# `dune runtest` wires in via the runtest alias.

.PHONY: all build check test bench slo steal recover perfsmoke fuzz fuzz-txn clean

all: build

build:
	dune build

check: build
	dune runtest --force

test: check

bench:
	dune exec bench/service.exe -- --shards 2 --ops 120 --crash 2

# Rolling-crash availability scenario: an open-loop client keeps
# offering load while power failures land mid-run; reports availability,
# downtime windows and p99 in vs out of recovery per recoverable mode,
# plus the windowed timeline for capri.
slo:
	dune exec bench/service.exe -- --rolling --shards 2 --ops 120 --crash 3 --period 8

# Recovery-at-scale scenario: a store bulk-loaded with 100k committed
# keys per shard serves 1x..10x request histories and crashes late in
# each run; the table shows the restart bill growing with history when
# journal compaction is off and staying flat when it is on. The smoke
# assertions behind this table (compaction-on tail bounded by the
# interval, --recovery-jobs 1 == 4 byte-identical) run in `make check`
# via bench/service_smoke.exe.
recover:
	dune exec bench/service.exe -- --recovery --shards 2 --keys 100000 --ops 20 --recovery-jobs 4

# Work-stealing scheduler showcase: the noisy-neighbor table (one
# zipfian-heavy tenant against uniform neighbors; stealing on vs off
# over the byte-identical workload, per-tenant p99 and worst-shard
# queue depth), the contended hot-key 2PC table (commit/abort ratio
# under pinned / steal-off / steal-on), and a steal-focused fuzz
# campaign over scheduled multi-tenant stores.
steal:
	dune exec bench/service.exe -- --noisy --shards 6 --ops 30 --tenants 3 --cores 4 --skew 3.0 --period 120
	dune exec bench/service.exe -- --hot-key --shards 4 --ops 20 --tenants 3 --cores 2 --hot-txns 8
	dune exec fuzz/main.exe -- --service --steal --budget 260

# Engine-equivalence gate: tiny-scale micro shapes + a kernel + a
# generated multi-core program, interp vs compiled, all five modes.
perfsmoke:
	dune exec bench/perfsmoke.exe

fuzz:
	dune exec fuzz/main.exe -- --service --budget 200

# 2PC-focused campaign: every trial carries cross-shard transactions and
# half the crash points aim at the protocol's region boundaries (vote
# seal, decision, apply), so crashes land mid-2PC by construction.
fuzz-txn:
	dune exec fuzz/main.exe -- --service --min-txns 1 --max-txns 3 --budget 250

clean:
	dune clean
