(* capri — command-line front end over the library.

   Subcommands:
     list                       enumerate the workload kernels
     compile  <kernel>          show region/checkpoint statistics
     run      <kernel>          run under the Capri architecture
     crash    <kernel>          crash-sweep a kernel and verify recovery
     serve                      KV serving under the acked-durability oracle
     show-config                print Table 1
*)

open Cmdliner
open Capri
module W = Capri_workloads

let kernel_arg =
  let doc = "Workload kernel name (see `capri list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let scale_arg =
  let doc = "Workload scale factor." in
  Arg.(value & opt int 6 & info [ "scale" ] ~docv:"N" ~doc)

let threshold_arg =
  let doc = "Region store threshold (paper default 256)." in
  Arg.(value & opt int 256 & info [ "threshold" ] ~docv:"N" ~doc)

(* Selects the execution engine for every simulation the invocation runs
   (the term sets `Executor.default_engine`; all session starts that do
   not pin an engine inherit it). *)
let engine_arg =
  let doc =
    "Execution engine ($(docv)): `compiled' pre-lowers basic blocks to \
     closure arrays (the default, or \\$CAPRI_ENGINE); `interp' is the \
     AST-walking reference engine. Simulation results are identical \
     either way; only wall-clock speed changes."
  in
  let engines =
    [ ("interp", Executor.Interp); ("compiled", Executor.Compiled) ]
  in
  Term.(
    const (fun e -> Executor.default_engine := e)
    $ Arg.(
        value
        & opt (enum engines) !Executor.default_engine
        & info [ "engine" ] ~docv:"interp|compiled" ~doc))

let find_kernel name scale =
  try W.Suite.by_name ~scale name
  with Not_found ->
    Printf.eprintf "unknown kernel %s\n" name;
    exit 1

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let k = W.Suite.by_name ~scale:2 name in
        Printf.printf "%-16s [%s] %s\n" name
          (W.Kernel.suite_name k.W.Kernel.suite)
          k.W.Kernel.description)
      W.Suite.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workload kernels")
    Term.(const run $ const ())

let compile_cmd =
  let explain_arg =
    let doc =
      "Explain every region boundary (why it exists) and the checkpoint \
       provenance of each optimisation pass, for the full configuration."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run name scale threshold explain =
    let k = find_kernel name scale in
    if explain then
      let options = Options.with_threshold threshold Options.default in
      let compiled = Pipeline.compile options k.W.Kernel.program in
      Format.printf "%a@.%a@." Compiled.pp_summary compiled Compiled.pp_explain
        compiled
    else
      List.iter
        (fun (label, options) ->
          let options = Options.with_threshold threshold options in
          let compiled = Pipeline.compile options k.W.Kernel.program in
          Format.printf "--- %s@.%a@." label Compiled.pp_summary compiled)
        Options.fig9_configs
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a kernel and report statistics")
    Term.(const run $ kernel_arg $ scale_arg $ threshold_arg $ explain_arg)

let pgo_arg =
  let doc = "Use profile-guided compilation (Section 6.3 future work)." in
  Arg.(value & flag & info [ "pgo" ] ~doc)

let run_cmd =
  let run name scale threshold pgo () =
    let k = find_kernel name scale in
    let baseline = run_volatile ~threads:k.W.Kernel.threads k.W.Kernel.program in
    let options = Options.with_threshold threshold Options.default in
    let compiled =
      if pgo then
        compile_pgo ~options ~threads:k.W.Kernel.threads k.W.Kernel.program
      else Pipeline.compile options k.W.Kernel.program
    in
    let config = Config.with_threshold threshold Config.sim_default in
    let result = run ~config ~threads:k.W.Kernel.threads compiled in
    let rs = result.Executor.region_stats in
    Printf.printf "volatile: %d cycles\n" baseline.Executor.cycles;
    Printf.printf "capri:    %d cycles (overhead %.2f%%)\n"
      result.Executor.cycles
      (100.0 *. (overhead ~baseline result -. 1.0));
    Printf.printf
      "dynamic:  %d instrs, %d stores + %d checkpoint stores, %d regions \
       (%.1f instrs, %.2f stores per region)\n"
      result.Executor.instrs result.Executor.stores result.Executor.ckpt_stores
      rs.Executor.regions_executed
      (float_of_int rs.Executor.total_instrs
       /. float_of_int (max 1 rs.Executor.regions_executed))
      (float_of_int rs.Executor.total_stores
       /. float_of_int (max 1 rs.Executor.regions_executed));
    Array.iteri
      (fun core outputs ->
        if outputs <> [] then
          Printf.printf "core %d out: %s\n" core
            (String.concat " " (List.map string_of_int outputs)))
      result.Executor.outputs
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a kernel under whole-system persistence")
    Term.(
      const run $ kernel_arg $ scale_arg $ threshold_arg $ pgo_arg
      $ engine_arg)

let crash_cmd =
  let points_arg =
    let doc = "Number of crash points to test." in
    Arg.(value & opt int 40 & info [ "points" ] ~docv:"N" ~doc)
  in
  let run name scale threshold points () =
    let k = find_kernel name scale in
    let options = Options.with_threshold threshold Options.default in
    let compiled = Pipeline.compile options k.W.Kernel.program in
    let reference =
      Verify.reference ~threads:k.W.Kernel.threads compiled
    in
    let stride = max 1 (reference.Executor.instrs / points) in
    match
      crash_sweep ~threads:k.W.Kernel.threads ~stride compiled
    with
    | Ok report ->
      Printf.printf
        "%d crash points: all recovered (%d recoveries, %d recovery \
         blocks, %d stale reads)\n"
        report.Verify.crash_points report.Verify.recoveries
        report.Verify.recovery_blocks_run report.Verify.stale_reads
    | Error f ->
      Printf.printf "FAILED at %s: %s\n"
        (String.concat "," (List.map string_of_int f.Verify.crash_at))
        f.Verify.reason;
      exit 1
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash-sweep a kernel and verify every recovery")
    Term.(
      const run $ kernel_arg $ scale_arg $ threshold_arg $ points_arg
      $ engine_arg)

let exec_cmd =
  let file_arg =
    let doc = "Path to a textual IR program (see Capri.Parser)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let crash_flag =
    let doc = "Also crash-sweep the program and verify recovery." in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let run file threshold crash () =
    match Parser.parse_file file with
    | Error e ->
      Format.eprintf "%s: %a@." file Parser.pp_error e;
      exit 1
    | Ok program ->
      let baseline = run_volatile program in
      let options = Options.with_threshold threshold Options.default in
      let compiled = Pipeline.compile options program in
      let config = Config.with_threshold threshold Config.sim_default in
      let result = run ~config compiled in
      Printf.printf "volatile: %d cycles | capri: %d cycles (overhead %.2f%%)\n"
        baseline.Executor.cycles result.Executor.cycles
        (100.0 *. (overhead ~baseline result -. 1.0));
      Array.iteri
        (fun core outputs ->
          if outputs <> [] then
            Printf.printf "core %d out: %s\n" core
              (String.concat " " (List.map string_of_int outputs)))
        result.Executor.outputs;
      if crash then
        match crash_sweep compiled with
        | Ok report ->
          Printf.printf "crash sweep: %d points, all recovered\n"
            report.Verify.crash_points
        | Error f ->
          Printf.printf "crash sweep FAILED: %s\n" f.Verify.reason;
          exit 1
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Compile and run a textual IR program from a file")
    Term.(const run $ file_arg $ threshold_arg $ crash_flag $ engine_arg)

let profile_cmd =
  let target_arg =
    let doc =
      "Workload kernel name (see `capri list') or path to a textual IR \
       program (e.g. examples/counter.capri)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let perfetto_arg =
    let doc =
      "Write the focus run's span trace as Chrome trace-event JSON \
       (open in https://ui.perfetto.dev or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc = "Write the merged metrics registry snapshot as JSON." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Rows in the hottest-regions table." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Run the per-mode simulations over N domains (output is \
       byte-identical at any job count)."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let doc = "Focus mode for the trace and region profile ($(docv))." in
    let modes =
      List.map (fun m -> (Persist.mode_name m, m)) Profile.all_modes
    in
    Arg.(
      value
      & opt (enum modes) Persist.Capri
      & info [ "mode" ] ~docv:"capri|naive-sync|undo-sync|redo-nowb|volatile"
          ~doc)
  in
  let write_file file contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc
  in
  let run target scale threshold top jobs focus perfetto metrics_file () =
    let program, threads =
      if Sys.file_exists target then
        match Parser.parse_file target with
        | Error e ->
          Format.eprintf "%s: %a@." target Parser.pp_error e;
          exit 1
        | Ok program -> (program, [ Executor.main_thread program ])
      else
        let k = find_kernel target scale in
        (k.W.Kernel.program, k.W.Kernel.threads)
    in
    let options = Options.with_threshold threshold Options.default in
    let p = Profile.run ~jobs ~focus ~options ~program ~threads () in
    (match Profile.validate_trace p with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "trace validation failed: %s\n" msg;
       exit 1);
    List.iter
      (fun (mode, (r : Executor.result)) ->
        Printf.printf "%-12s %10d cycles  %8d nvm line writes\n"
          (Persist.mode_name mode) r.Executor.cycles
          r.Executor.persist_stats.Capri_arch.Persist.nvm_line_writes)
      p.Profile.results;
    print_newline ();
    print_string (Profile.render_reasons p);
    print_newline ();
    Printf.printf "hottest regions (%s mode):\n"
      (Persist.mode_name p.Profile.focus);
    print_string (Profile.render_top p ~n:top);
    Option.iter
      (fun f ->
        write_file f (Profile.perfetto_json p);
        Printf.eprintf "wrote %s (perfetto trace, %d events)\n" f
          (Capri_obs.Tracer.count p.Profile.obs.Capri_obs.Obs.tracer))
      perfetto;
    Option.iter
      (fun f ->
        write_file f (Profile.metrics_json p);
        Printf.eprintf "wrote %s (metrics snapshot)\n" f)
      metrics_file
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a kernel under every persistence mode: merged metrics, \
          Perfetto span trace and hottest-regions table")
    Term.(
      const run $ target_arg $ scale_arg $ threshold_arg $ top_arg $ jobs_arg
      $ mode_arg $ perfetto_arg $ metrics_arg $ engine_arg)

let trace_cmd =
  let run name scale threshold () =
    let k = find_kernel name scale in
    let options = Options.with_threshold threshold Options.default in
    let compiled = Pipeline.compile options k.W.Kernel.program in
    let tr = Trace.create () in
    let session =
      Executor.start ~trace:tr ~program:compiled.Compiled.program
        ~threads:k.W.Kernel.threads ()
    in
    (match Executor.run session with
     | Executor.Finished _ | Executor.Crashed _ -> ());
    print_string (Trace.render tr)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Show the dynamic region timeline of a kernel")
    Term.(const run $ kernel_arg $ scale_arg $ threshold_arg $ engine_arg)

let serve_cmd =
  let module Svc = Capri_service in
  let shards_arg =
    let doc = "Shard cores serving the store." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let mix_arg =
    let doc = "YCSB-style request mix ($(docv))." in
    let mixes = List.map (fun m -> (Svc.Client.mix_name m, m))
        [ Svc.Client.A; Svc.Client.B; Svc.Client.C ]
    in
    Arg.(value & opt (enum mixes) Svc.Client.A & info [ "mix" ] ~docv:"A|B|C" ~doc)
  in
  let ops_arg =
    let doc = "Requests per shard." in
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let crash_arg =
    let doc =
      "Crashes injected mid-service (volatile mode always runs crash-free)."
    in
    Arg.(value & opt int 2 & info [ "crash" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Run the per-mode services over N domains (output is byte-identical \
       at any job count)."
    in
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let txn_mix_arg =
    let doc =
      "Weave $(docv) x --ops cross-shard transactions (multi-get/put/cas \
       under two-phase commit) into each run; 0 disables. Transactional \
       stores bypass admission control."
    in
    Arg.(value & opt float 0.0 & info [ "txn-mix" ] ~docv:"FRAC" ~doc)
  in
  let txn_items_arg =
    let doc = "Maximum items per participant shard in each transaction." in
    Arg.(value & opt int 2 & info [ "txn-items" ] ~docv:"N" ~doc)
  in
  let mode_enum =
    List.map (fun m -> (Persist.mode_name m, m)) Profile.all_modes
  in
  let focus_arg =
    let doc =
      "Persistence mode of the focus run that the observability flags \
       ($(b,--perfetto), $(b,--timeline), $(b,--slo)) report on."
    in
    Arg.(value & opt (enum mode_enum) Persist.Capri & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let perfetto_arg =
    let doc =
      "Write a Perfetto / chrome://tracing trace of the focus run to \
       $(docv): region spans per core, request-lifecycle spans per core, \
       crash instants. The trace is validated (balanced, monotone per \
       track) before writing."
    in
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE" ~doc)
  in
  let timeline_arg =
    let doc =
      "Print the windowed service timeline of the focus run: per-window \
       throughput, latency percentiles, in-flight depth, rejects, \
       downtime and recoveries."
    in
    Arg.(value & flag & info [ "timeline" ] ~doc)
  in
  let slo_arg =
    let doc =
      "Print the SLO/availability report of the focus run: unavailability \
       windows, availability %, p99 inside vs. outside recovery, replay \
       cost per recovery."
    in
    Arg.(value & flag & info [ "slo" ] ~doc)
  in
  let slo_p99_arg =
    let doc =
      "p99 latency target in cycles; the SLO report grades the focus run \
       against it and the command fails when it is missed."
    in
    Arg.(value & opt (some int) None & info [ "slo-p99" ] ~docv:"CYCLES" ~doc)
  in
  let slo_avail_arg =
    let doc =
      "Availability target as a fraction (e.g. 0.999); graded like \
       $(b,--slo-p99)."
    in
    Arg.(value & opt (some float) None & info [ "slo-avail" ] ~docv:"FRAC" ~doc)
  in
  let window_arg =
    let doc = "Timeline window width in cycles (default: run/24)." in
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"CYCLES" ~doc)
  in
  let tenants_arg =
    let doc =
      "Serve $(docv) tenants instead of one: the noisy-neighbor cast \
       (tenant 0 zipfian-heavy, the rest uniform, equal weights) over \
       per-tenant key namespaces, with per-tenant served/p99 reported per \
       mode and per-tenant rows in the $(b,--slo) report."
    in
    Arg.(value & opt int 1 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let cores_arg =
    let doc =
      "Multiplex the shards over $(docv) worker cores through the \
       work-stealing scheduler instead of pinning one shard per core \
       (0 keeps the pinned layout)."
    in
    Arg.(value & opt int 0 & info [ "cores" ] ~docv:"N" ~doc)
  in
  let steal_arg =
    let doc =
      "With $(b,--cores): enable work stealing ($(docv) = on, the \
       default) or keep every shard on its home core as the static \
       pinning reference ($(docv) = off)."
    in
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "steal" ] ~docv:"on|off" ~doc)
  in
  let keys_arg =
    let doc =
      "Bulk-load $(docv) already-committed keys per shard before serving \
       (and widen the client key space to match); 0 serves an empty store. \
       The oracle treats preloaded pairs as served history."
    in
    Arg.(value & opt int 0 & info [ "keys" ] ~docv:"N" ~doc)
  in
  let compact_arg =
    let doc =
      "Compact each core's durable journal whenever its un-checkpointed \
       tail reaches $(docv) entries, bounding recovery replay by the \
       interval instead of served history; 0 disables compaction."
    in
    Arg.(value & opt int 0 & info [ "compact" ] ~docv:"N" ~doc)
  in
  let rjobs_arg =
    let doc =
      "Plan per-core crash recovery over $(docv) domains (images and \
       stats are byte-identical at any width)."
    in
    Arg.(value & opt int 1 & info [ "recovery-jobs" ] ~docv:"N" ~doc)
  in
  let run shards mix ops crashes jobs txn_mix txn_items focus perfetto
      timeline slo slo_p99 slo_avail window tenants cores steal keys compact
      rjobs () =
    let client =
      {
        Svc.Client.default with
        Svc.Client.mix;
        ops_per_shard = ops;
        key_space =
          (if keys > 0 then keys else Svc.Client.default.Svc.Client.key_space);
        txns = int_of_float (max 0.0 txn_mix *. float_of_int ops);
        txn_items = max 1 txn_items;
      }
    in
    let preload =
      if keys <= 0 then [||]
      else
        Array.init (max 1 shards) (fun s ->
            Array.init keys (fun i ->
                let key = i + 1 in
                (key, (key + (s * 17)) mod 251)))
    in
    let sched =
      if cores > 0 then
        Some { Svc.Sched.cores; quantum = Svc.Sched.default.Svc.Sched.quantum; steal }
      else None
    in
    let tenant_cast =
      if tenants > 1 then
        Some (Svc.Client.noisy_tenants ~tenants ~skew:1.2)
      else None
    in
    let plan_for mode =
      Svc.Server.plan
        {
          Svc.Server.default_cfg with
          Svc.Server.shards;
          client;
          mode;
          sched;
          tenants = tenant_cast;
          config =
            { Config.sim_default with Config.compact_interval = max 0 compact };
          recovery_jobs = max 1 rjobs;
          preload;
        }
    in
    let schedule_for t mode =
      if crashes <= 0 || mode = Persist.Volatile then []
      else begin
        let total = (Svc.Server.run t).Svc.Server.result.Executor.instrs in
        List.init crashes (fun _ -> max 1 (total / (crashes + 1)))
      end
    in
    let serve mode =
      let t = plan_for mode in
      let outcome = Svc.Server.run ~crash_at:(schedule_for t mode) t in
      ( mode,
        Svc.Server.check t outcome,
        Svc.Server.stats t outcome,
        Svc.Server.steals t outcome,
        Svc.Server.tenant_stats t outcome )
    in
    let results =
      Capri_util.Pool.with_pool ~jobs:(max 1 jobs) (fun pool ->
          Capri_util.Pool.map_list pool serve Profile.all_modes)
    in
    let failed = ref false in
    List.iter
      (fun (mode, checked, stats, steals, per_tenant) ->
        Format.printf "%-12s %a@." (Persist.mode_name mode) Svc.Sla.pp_stats
          stats;
        if sched <> None then
          Format.printf "%-12s   steals %d@." (Persist.mode_name mode) steals;
        Array.iteri
          (fun tn (served, p99) ->
            Format.printf "%-12s   tenant %d: %d served, p99 %.0f@."
              (Persist.mode_name mode) tn served p99)
          per_tenant;
        match checked with
        | Ok () -> ()
        | Error v ->
          failed := true;
          Format.printf "%-12s ORACLE VIOLATION: %a@." (Persist.mode_name mode)
            Svc.Sla.pp_violation v)
      results;
    (* Focus run with observability on: one instrumented pass through the
       selected mode, reported through the requested lenses. *)
    let want_report = slo || slo_p99 <> None || slo_avail <> None in
    if perfetto <> None || timeline || want_report then begin
      let t = plan_for focus in
      let obs = Capri_obs.Obs.create () in
      let outcome = Svc.Server.run ~obs ~crash_at:(schedule_for t focus) t in
      (match Svc.Server.check t outcome with
      | Ok () -> ()
      | Error v ->
        failed := true;
        Format.printf "%-12s ORACLE VIOLATION: %a@." (Persist.mode_name focus)
          Svc.Sla.pp_violation v);
      (match Capri_obs.Tracer.validate obs.Capri_obs.Obs.tracer with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "trace of %s run is malformed: %s\n"
          (Persist.mode_name focus) e;
        failed := true);
      (match perfetto with
      | Some file ->
        let oc = open_out file in
        output_string oc
          (Capri_obs.Tracer.to_chrome_json obs.Capri_obs.Obs.tracer);
        close_out oc;
        Printf.printf "wrote %s (%d events, %s mode)\n" file
          (Capri_obs.Tracer.count obs.Capri_obs.Obs.tracer)
          (Persist.mode_name focus)
      | None -> ());
      if timeline then
        print_string
          (Svc.Slo.render_timeline (Svc.Slo.timeline ?width:window ~t outcome));
      if want_report then begin
        let r =
          Svc.Slo.report ?slo_p99 ?slo_avail:(Option.map (fun a -> a) slo_avail)
            ~t outcome
        in
        Format.printf "%a" Svc.Slo.pp_report r;
        let missed =
          (match (r.Svc.Slo.slo_p99, r.Svc.Slo.p99_burn) with
          | Some _, Some burn -> burn > 1.0
          | _ -> false)
          ||
          match r.Svc.Slo.slo_avail with
          | Some target -> r.Svc.Slo.availability < target
          | None -> false
        in
        if missed then failed := true
      end
    end;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a key-value workload — optionally with cross-shard \
          transactions under two-phase commit — under every persistence \
          mode, crashing mid-service, and report throughput, latency and \
          recovery time under the serializability + acked-durability \
          oracle. With $(b,--perfetto), $(b,--timeline) or $(b,--slo), an \
          instrumented focus run additionally exports request-lifecycle \
          traces, a windowed service timeline and an SLO/availability \
          report")
    Term.(
      const run $ shards_arg $ mix_arg $ ops_arg $ crash_arg $ jobs_arg
      $ txn_mix_arg $ txn_items_arg $ focus_arg $ perfetto_arg $ timeline_arg
      $ slo_arg $ slo_p99_arg $ slo_avail_arg $ window_arg $ tenants_arg
      $ cores_arg $ steal_arg $ keys_arg $ compact_arg $ rjobs_arg
      $ engine_arg)

let show_config_cmd =
  let run () = Format.printf "%a@." Config.pp_table Config.table1 in
  Cmd.v (Cmd.info "show-config" ~doc:"Print the Table 1 configuration")
    Term.(const run $ const ())

let () =
  let doc = "Capri: whole-system persistence, compiler + architecture" in
  let info = Cmd.info "capri" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; compile_cmd; run_cmd; crash_cmd; exec_cmd; profile_cmd;
            serve_cmd; trace_cmd; show_config_cmd ]))
